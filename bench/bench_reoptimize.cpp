/// \file bench_reoptimize.cpp
/// Extension experiment: how much utility does the paper's frozen-placement
/// assumption cost?  Random arrival/departure sequences fragment the
/// network; global_reoptimize() then re-places everything from scratch and
/// reports the achievable gain next to the migration cost (CT moves) that
/// realizing it would incur — the trade §IV's introduction declines to
/// make.

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"
#include "workload/task_graphs.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 60;
  std::vector<double> gains, migrations, adopted;
  std::vector<double> gr_before, gr_after;

  for (int seed = 1; seed <= kTrials; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kLinear;
    spec.bottleneck = BottleneckCase::kBalanced;
    spec.ncps = 8;
    const Scenario sc = make_scenario(spec, rng);
    Scheduler sched(sc.net);

    // Churny prologue: 8 arrivals, ~half depart, fragmenting capacity.
    std::vector<std::string> live;
    for (int a = 0; a < 8; ++a) {
      Application app{"app" + std::to_string(a),
                      linear_task_graph(3, rng, TaskRanges{}),
                      rng.bernoulli(0.5)
                          ? QoeSpec::best_effort(
                                static_cast<double>(rng.uniform_int(1, 3)))
                          : QoeSpec::guaranteed_rate(rng.uniform(0.1, 0.5),
                                                     0.0),
                      {}};
      app.pinned = {{app.graph->sources()[0], sc.pinned.begin()->second},
                    {app.graph->sinks()[0], sc.pinned.rbegin()->second}};
      if (sched.submit(app).admitted) live.push_back(app.name);
      if (live.size() > 2 && rng.bernoulli(0.4)) {
        const std::size_t idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(live.size()) - 1));
        sched.remove(live[idx]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    if (sched.placed().empty()) continue;

    gr_before.push_back(sched.total_gr_rate());
    const auto r = sched.global_reoptimize();
    gains.push_back(r.new_be_utility - r.old_be_utility);
    migrations.push_back(static_cast<double>(r.migrated_cts));
    adopted.push_back(r.adopted ? 1.0 : 0.0);
    gr_after.push_back(sched.total_gr_rate());
  }

  bench::section(
      "Global re-optimization after churn (star-8 balanced, 8 arrivals "
      "with random departures)");
  Table t({"metric", "value"});
  t.add_row({"trials", std::to_string(gains.size())});
  t.add_row({"re-plan adopted", fmt(mean(adopted) * 100, 0) + "%"});
  t.add_row({"mean BE utility gain (adopted only)",
             fmt(mean(gains) / std::max(mean(adopted), 1e-9), 3)});
  t.add_row({"mean CT migrations per adopted re-plan",
             fmt(mean(migrations) / std::max(mean(adopted), 1e-9), 1)});
  t.add_row({"GR rate before -> after",
             fmt(mean(gr_before)) + " -> " + fmt(mean(gr_after))});
  t.print();
  bench::note(
      "\nThe paper freezes placements (migration is costly); this measures "
      "what that conservatism leaves on the table after churn, and the "
      "number of task moves needed to collect it.");
  return 0;
}
