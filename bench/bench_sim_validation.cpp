/// \file bench_sim_validation.cpp
/// Mininet-style validation of the whole pipeline (the role §V-A's
/// emulation plays in the paper): for each bottleneck regime, place two
/// BE applications with the full SPARCLE scheduler, replay every
/// allocated path in the discrete-event simulator at its allocated rate,
/// and report offered vs delivered throughput plus the peak element
/// backlog — bounded backlog certifies the §IV-A stability condition that
/// the whole allocation machinery is supposed to guarantee.

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "core/scheduler.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  bench::section(
      "Simulator validation: 2 BE apps per instance, SPARCLE scheduler "
      "allocations replayed at 97% of their allocated rates");
  Table t({"case", "instances", "offered (mean)", "delivered (mean)",
           "delivered/offered", "peak backlog (worst element, mean)"});

  for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                            BottleneckCase::kBalanced}) {
    std::vector<double> offered_v, delivered_v, backlog_v;
    int instances = 0;
    for (int seed = 1; seed <= 15; ++seed) {
      Rng rng(seed);
      ScenarioSpec spec;
      spec.topology = TopologyKind::kStar;
      spec.graph = GraphKind::kLinear;
      spec.bottleneck = bn;
      spec.ncps = 8;
      const Scenario sc = make_scenario(spec, rng);
      const auto graph2 =
          linear_task_graph(4, rng, task_ranges_for(bn));

      Scheduler sched(sc.net);
      Application a1{"a1", sc.graph, QoeSpec::best_effort(2.0), sc.pinned};
      Application a2{"a2", graph2, QoeSpec::best_effort(1.0),
                     {{graph2->sources()[0], sc.pinned.begin()->second},
                      {graph2->sinks()[0], sc.pinned.rbegin()->second}}};
      if (!sched.submit(a1).admitted || !sched.submit(a2).admitted) continue;
      ++instances;

      sim::StreamSimulator sim(sc.net, seed);
      double offered = 0;
      double min_rate = 1e300;
      for (const PlacedApp& pa : sched.placed())
        for (std::size_t k = 0; k < pa.paths.size(); ++k)
          if (pa.path_rates[k] > 1e-9) {
            const double rate = 0.97 * pa.path_rates[k];
            sim.add_stream(*pa.app.graph, pa.paths[k].placement, rate);
            offered += rate;
            min_rate = std::min(min_rate, rate);
          }
      const double horizon = 400.0 / min_rate;
      const auto rep = sim.run(horizon, horizon / 4);
      double delivered = 0;
      for (const auto& st : rep.streams) delivered += st.throughput;
      std::size_t peak = 0;
      for (std::size_t b : rep.ncp_peak_backlog) peak = std::max(peak, b);
      for (std::size_t b : rep.link_peak_backlog) peak = std::max(peak, b);
      offered_v.push_back(offered);
      delivered_v.push_back(delivered);
      backlog_v.push_back(static_cast<double>(peak));
    }
    t.add_row({to_string(bn), std::to_string(instances), fmt(mean(offered_v)),
               fmt(mean(delivered_v)),
               fmt(mean(delivered_v) / mean(offered_v), 3),
               fmt(mean(backlog_v), 1)});
  }
  t.print();
  bench::note(
      "\ndelivered/offered ~1.0 with small bounded backlogs confirms the "
      "allocations sit inside the stability region of every element.");
  return 0;
}
