/// \file bench_fig8_optimality.cpp
/// Reproduces Fig. 8: the 25/50/75th percentiles of SPARCLE's achieved
/// processing rate divided by the exhaustive-search optimal rate, for a
/// linear task graph (4 middle CTs) on linear and fully-connected network
/// topologies, across the NCP-bottleneck / balanced / link-bottleneck
/// regimes.  The paper's claim: SPARCLE "almost always finds the optimal
/// rates" — all percentiles near 1.0.

#include <cstdio>
#include <vector>

#include "baselines/exhaustive.hpp"
#include "bench/common.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

using namespace sparcle;
using namespace sparcle::workload;
using bench::fmt;
using bench::Table;

int main() {
  constexpr int kTrials = 100;
  const std::vector<BottleneckCase> cases = {
      BottleneckCase::kNcp, BottleneckCase::kBalanced, BottleneckCase::kLink};

  for (TopologyKind topo : {TopologyKind::kLinear, TopologyKind::kFull}) {
    bench::section("Fig. 8 (" + to_string(topo) +
                   " network): SPARCLE rate / optimal rate percentiles");
    Table t({"case", "25th pct", "50th pct", "75th pct", "mean",
             "trials at optimum", "+local search (mean)"});
    for (BottleneckCase bn : cases) {
      std::vector<double> ratios, refined;
      int exact = 0;
      for (int seed = 1; seed <= kTrials; ++seed) {
        Rng rng(seed);
        ScenarioSpec spec;
        spec.topology = topo;
        spec.graph = GraphKind::kLinear;
        spec.bottleneck = bn;
        spec.ncps = 4;
        spec.middle_cts = 4;
        const Scenario sc = make_scenario(spec, rng);
        const AssignmentProblem p = sc.problem();
        const double ours = SparcleAssigner().assign(p).rate;
        SparcleAssignerOptions ls;
        ls.local_search_rounds = 8;
        const double ours_ls = SparcleAssigner(ls).assign(p).rate;
        const double best = ExhaustiveAssigner().assign(p).rate;
        if (best <= 0) continue;
        const double ratio = ours / best;
        ratios.push_back(ratio);
        refined.push_back(ours_ls / best);
        if (ratio > 1.0 - 1e-9) ++exact;
      }
      t.add_row({to_string(bn), fmt(percentile(ratios, 25)),
                 fmt(percentile(ratios, 50)), fmt(percentile(ratios, 75)),
                 fmt(mean(ratios)),
                 std::to_string(exact) + "/" + std::to_string(kTrials),
                 fmt(mean(refined))});
    }
    t.print();
  }
  bench::note(
      "\npaper: SPARCLE almost always finds the optimal rates (percentiles "
      "~1.0 in all six case/topology combinations).  The last column adds "
      "the hill-climbing extension (core/local_search.hpp), which closes "
      "most of the balanced-case gap.");
  return 0;
}
