/// \file bench_latency_curve.cpp
/// Extension figure: per-image latency of the face-detection pipeline on
/// the testbed as the offered rate approaches the stable limit — analytic
/// PS estimate (core/latency.hpp) next to the discrete-event simulation,
/// with the simulated p95/p99 tails.  The paper's evaluation stops at the
/// stable *rate*; this is the latency story a deployment also needs.

#include <cstdio>

#include "bench/common.hpp"
#include "core/latency.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

int main() {
  const auto tb = workload::testbed_network(22.0);
  const auto graph = workload::face_detection_app();
  AssignmentProblem problem;
  problem.net = &tb.net;
  problem.graph = graph.get();
  problem.capacities = CapacitySnapshot(tb.net);
  problem.pinned = {{graph->sources()[0], tb.camera},
                    {graph->sinks()[0], tb.consumer}};
  const AssignmentResult r = SparcleAssigner().assign(problem);
  if (!r.feasible) {
    std::printf("assignment failed\n");
    return 1;
  }

  bench::section(
      "Latency vs offered load: face-detection pipeline, testbed @22 Mbps "
      "(stable limit " +
      fmt(r.rate) + " images/s)");
  Table t({"load (fraction of limit)", "analytic mean (s)",
           "simulated mean (s)", "simulated p95 (s)", "simulated p99 (s)"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9, 0.95}) {
    const double rate = frac * r.rate;
    const LatencyEstimate est =
        estimate_latency(tb.net, *graph, r.placement, rate);
    sim::StreamSimulator sim(tb.net, 1);
    sim.add_stream(*graph, r.placement, rate, /*poisson=*/true);
    const double horizon = 800.0 / rate;
    const auto rep = sim.run(horizon, horizon / 4);
    t.add_row({fmt(frac, 2), fmt(est.total, 2),
               fmt(rep.streams[0].mean_latency, 2),
               fmt(rep.streams[0].p95_latency, 2),
               fmt(rep.streams[0].p99_latency, 2)});
  }
  t.print();
  bench::note(
      "\nThe analytic PS estimate tracks the simulated mean into heavy "
      "load; tails grow faster, as queueing theory predicts.");
  return 0;
}
