/// \file bench_service.cpp
/// Load generator for the placement service (src/service): measures
/// sustained admission throughput and enqueue-to-reply latency on a
/// 64-node dispersed site as a function of the scheduler batch size and
/// the number of client threads — plus the wire path itself: closed-loop
/// TCP round trips through the event-loop server in both codecs (NDJSON
/// vs binary frames) and a connection-scaling sweep to 1024 concurrent
/// clients.
///
/// Two drive modes:
///
///   - burst (open loop): every client thread enqueues its whole request
///     list without waiting, then the run drains.  This is the regime
///     batching is built for — the queue stays deep, so each weighted-PF
///     re-solve (the per-admission cost that grows with the number of
///     placed BE apps) is amortized over up to `max_batch` admissions.
///   - closed loop: every client waits for each future before sending the
///     next request, so queue depth ≤ thread count.  This bounds the
///     latency a lone interactive client sees.
///
/// With SPARCLE_BENCH_JSON=<path> set, a flat JSON results map is written
/// for tools/bench_service.sh, which appends a labeled entry to the
/// checked-in BENCH_service.json trajectory and gates regressions.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "service/client.hpp"
#include "service/event_server.hpp"
#include "service/scheduler_service.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

namespace {

/// 64-NCP dispersed site: src/dst anchors plus a two-tier relay pool
/// (16 capable relays, 46 weak edge nodes) — the bench_churn topology at
/// the scenario size the acceptance gate names.
Network make_site64() {
  constexpr int kBig = 16, kSmall = 46;
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  for (int r = 0; r < kBig + kSmall; ++r)
    net.add_ncp("relay" + std::to_string(r),
                ResourceVector::scalar(r < kBig ? 40.0 : 4.0));
  for (int r = 0; r < kBig + kSmall; ++r) {
    net.add_link("s" + std::to_string(r), 0, 2 + r, 1000.0);
    net.add_link("d" + std::to_string(r), 2 + r, 1, 1000.0);
  }
  return net;
}

/// Deterministic arrival mix: 3-CT chains anchored src->dst, mostly BE
/// with varied priorities, every 8th GR with a small guarantee.
std::vector<Application> make_arrivals(std::size_t n) {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(1.0));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  std::vector<Application> apps;
  apps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Application app;
    app.name = "app" + std::to_string(i);
    app.graph = g;
    app.qoe = (i % 8 == 7)
                  ? QoeSpec::guaranteed_rate(0.1 + 0.05 * (i % 3), 0.0)
                  : QoeSpec::best_effort(1.0 + static_cast<double>(i % 4));
    app.pinned = {{0, 0}, {2, 1}};
    apps.push_back(std::move(app));
  }
  return apps;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (idx - static_cast<double>(lo));
}

struct RunResult {
  double admissions_per_s{0.0};  ///< completed requests / wall second
  double p50_us{0.0};
  double p99_us{0.0};
  // Per-stage breakdown (RequestTimeline): where enqueue-to-reply time
  // actually goes — queue wait, the request's own scheduler call, and the
  // batch's shared PF solve.
  double queue_p50_us{0.0}, queue_p99_us{0.0};
  double apply_p50_us{0.0}, apply_p99_us{0.0};
  double solve_p50_us{0.0}, solve_p99_us{0.0};
  std::size_t admitted{0};
  std::size_t rejected{0};
  std::uint64_t batches{0};
  std::uint64_t resolves_saved{0};
};

/// One configuration: fresh service, `threads` clients submitting
/// `arrivals` split round-robin, burst or closed-loop.
RunResult run_config(const Network& net, const std::vector<Application>& arrivals,
                     std::size_t max_batch, std::size_t threads, bool burst) {
  service::ServiceOptions options;
  options.max_batch = max_batch;
  options.queue_capacity = arrivals.size() + threads;  // never backpressure
  service::SchedulerService svc(net, SchedulerOptions{}, options);

  std::vector<std::vector<double>> latencies(threads), queue_stage(threads),
      apply_stage(threads), solve_stage(threads);
  std::vector<std::size_t> admitted(threads, 0), rejected(threads, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      auto settle = [&](service::ServiceResult r) {
        latencies[t].push_back(r.latency_us);
        queue_stage[t].push_back(r.timeline.queue_us);
        apply_stage[t].push_back(r.timeline.apply_us);
        solve_stage[t].push_back(r.timeline.solve_us);
        ++(r.ok() ? admitted[t] : rejected[t]);
      };
      std::vector<std::future<service::ServiceResult>> pending;
      for (std::size_t i = t; i < arrivals.size(); i += threads) {
        auto future = svc.submit(arrivals[i]);
        if (burst) {
          pending.push_back(std::move(future));
          continue;
        }
        settle(future.get());
      }
      for (auto& future : pending) settle(future.get());
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  RunResult result;
  std::vector<double> all, queue_all, apply_all, solve_all;
  for (std::size_t t = 0; t < threads; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    queue_all.insert(queue_all.end(), queue_stage[t].begin(),
                     queue_stage[t].end());
    apply_all.insert(apply_all.end(), apply_stage[t].begin(),
                     apply_stage[t].end());
    solve_all.insert(solve_all.end(), solve_stage[t].begin(),
                     solve_stage[t].end());
    result.admitted += admitted[t];
    result.rejected += rejected[t];
  }
  result.admissions_per_s = static_cast<double>(all.size()) / wall_s;
  result.p50_us = percentile(all, 0.50);
  result.p99_us = percentile(all, 0.99);
  result.queue_p50_us = percentile(queue_all, 0.50);
  result.queue_p99_us = percentile(queue_all, 0.99);
  result.apply_p50_us = percentile(apply_all, 0.50);
  result.apply_p99_us = percentile(apply_all, 0.99);
  result.solve_p50_us = percentile(solve_all, 0.50);
  result.solve_p99_us = percentile(solve_all, 0.99);
  const service::ServiceStats stats = svc.stats();
  result.batches = stats.batches;
  result.resolves_saved = stats.resolves_saved;
  svc.stop();
  return result;
}

/// One wire-path configuration: `clients` closed-loop TCP clients, each
/// its own connection in `codec`, each driving `ops_per_client` round
/// trips of `verb` against an already-running event server.  Latency is
/// whole-round-trip (encode, kernel, event loop, decode).
struct WireResult {
  double rps{0.0};
  double p50_us{0.0};
  double p99_us{0.0};
  std::size_t ops{0};
  std::size_t errors{0};
};

WireResult run_wire(std::uint16_t port, service::Codec codec,
                    std::size_t clients, std::size_t ops_per_client,
                    const std::string& verb) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::size_t> errors{0};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        service::TcpClient client("127.0.0.1", port, codec);
        {
          std::unique_lock<std::mutex> lock(mu);
          ++ready;
          cv.notify_all();
          cv.wait(lock, [&] { return go; });
        }
        const std::map<std::string, std::string> request{{"verb", verb}};
        latencies[c].reserve(ops_per_client);
        for (std::size_t i = 0; i < ops_per_client; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto reply = client.call(request);
          latencies[c].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
          const auto it = reply.find("status");
          if (it == reply.end() || it->second != "ok") ++errors;
        }
      } catch (const std::exception&) {
        ++errors;
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == clients; });
  }
  const auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu);
    go = true;
    cv.notify_all();
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  WireResult result;
  std::vector<double> all;
  for (const std::vector<double>& lat : latencies)
    all.insert(all.end(), lat.begin(), lat.end());
  result.ops = all.size();
  result.errors = errors.load();
  result.rps = static_cast<double>(all.size()) / wall_s;
  result.p50_us = percentile(all, 0.50);
  result.p99_us = percentile(all, 0.99);
  return result;
}

}  // namespace

int main() {
  const Network net = make_site64();
  const std::vector<Application> arrivals = make_arrivals(192);
  std::map<std::string, double> json;

  bench::section("burst (open loop): 192 arrivals, 8 client threads, "
                 "64-NCP site");
  bench::note(
      "Each client enqueues its share without waiting; deep queues let the\n"
      "scheduling thread amortize one weighted-PF re-solve over max_batch\n"
      "admissions.  batch=1 is the classic per-call pipeline.");
  Table burst_table({"max_batch", "admissions/s", "speedup", "p50 us",
                     "p99 us", "queue p99", "solve p99", "admitted",
                     "batches", "resolves saved"});
  double base_throughput = 0.0;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
    const RunResult r = run_config(net, arrivals, batch, 8, /*burst=*/true);
    if (batch == 1) base_throughput = r.admissions_per_s;
    const double speedup = r.admissions_per_s / base_throughput;
    burst_table.add_row({std::to_string(batch), fmt(r.admissions_per_s, 0),
                         fmt(speedup, 2), fmt(r.p50_us, 0), fmt(r.p99_us, 0),
                         fmt(r.queue_p99_us, 0), fmt(r.solve_p99_us, 0),
                         std::to_string(r.admitted),
                         std::to_string(r.batches),
                         std::to_string(r.resolves_saved)});
    const std::string key = "batch" + std::to_string(batch);
    json["admissions_per_s/" + key] = r.admissions_per_s;
    json["speedup/" + key] = speedup;
    json["p50_us/" + key] = r.p50_us;
    json["p99_us/" + key] = r.p99_us;
    json["stage_queue_p50_us/" + key] = r.queue_p50_us;
    json["stage_queue_p99_us/" + key] = r.queue_p99_us;
    json["stage_apply_p50_us/" + key] = r.apply_p50_us;
    json["stage_apply_p99_us/" + key] = r.apply_p99_us;
    json["stage_solve_p50_us/" + key] = r.solve_p50_us;
    json["stage_solve_p99_us/" + key] = r.solve_p99_us;
  }
  burst_table.print();

  bench::section("closed loop: 192 arrivals, max_batch=16");
  bench::note(
      "Clients wait for each reply before the next request, so queue depth\n"
      "is bounded by the thread count: the single-client row is the\n"
      "interactive-latency floor, the 8-client row shows batching picking\n"
      "up as concurrency rises.");
  Table closed_table({"client threads", "admissions/s", "p50 us", "p99 us",
                      "batches", "resolves saved"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const RunResult r = run_config(net, arrivals, 16, threads,
                                   /*burst=*/false);
    closed_table.add_row({std::to_string(threads), fmt(r.admissions_per_s, 0),
                          fmt(r.p50_us, 0), fmt(r.p99_us, 0),
                          std::to_string(r.batches),
                          std::to_string(r.resolves_saved)});
    const std::string key = "threads" + std::to_string(threads);
    json["closed_admissions_per_s/" + key] = r.admissions_per_s;
    json["closed_p50_us/" + key] = r.p50_us;
    json["closed_p99_us/" + key] = r.p99_us;
  }
  closed_table.print();

  // -------------------------------------------------------------------
  // Wire path: one service + event-loop server shared by both sweeps.
  {
    service::ServiceOptions wire_options;
    wire_options.max_batch = 16;
    wire_options.queue_capacity = 4096;
    service::SchedulerService svc(net, SchedulerOptions{}, wire_options);
    for (std::size_t i = 0; i < 8; ++i) svc.submit(arrivals[i]).get();
    service::EventServer server(svc);
    server.start();

    bench::section("wire codec: closed-loop metrics scrapes over TCP "
                   "(json vs binary frames)");
    bench::note(
        "Each client owns one connection and scrapes the ops endpoint in a\n"
        "closed loop — the multi-KB Prometheus body is the codec-bound\n"
        "payload: NDJSON must escape it into a JSON string and the client\n"
        "re-scan it char by char; binary frames carry it verbatim.");
    Table codec_table(
        {"codec", "clients", "scrapes/s", "p50 us", "p99 us", "errors"});
    for (const service::Codec codec :
         {service::Codec::kJson, service::Codec::kBinary}) {
      const char* codec_name = codec == service::Codec::kJson ? "json"
                                                              : "binary";
      for (const std::size_t clients :
           {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
        const std::size_t ops = clients == 1 ? 192 : (clients == 8 ? 48 : 12);
        const WireResult r =
            run_wire(server.port(), codec, clients, ops, "metrics");
        codec_table.add_row({codec_name, std::to_string(clients),
                             fmt(r.rps, 0), fmt(r.p50_us, 0),
                             fmt(r.p99_us, 0), std::to_string(r.errors)});
        const std::string key =
            std::string(codec_name) + "_clients" + std::to_string(clients);
        json["wire_rps/" + key] = r.rps;
        json["wire_p50_us/" + key] = r.p50_us;
        json["wire_p99_us/" + key] = r.p99_us;
      }
    }
    codec_table.print();

    bench::section("connection scaling: binary codec, closed-loop queries, "
                   "1 -> 1024 clients");
    bench::note(
        "Every client is a live connection on the single event loop; the\n"
        "closed-loop p99 should grow at most linearly with the client count\n"
        "(tools/bench_service.sh gates p99@256 against p99@1).");
    Table scale_table(
        {"clients", "queries/s", "p50 us", "p99 us", "ops", "errors"});
    for (const std::size_t clients :
         {std::size_t{1}, std::size_t{64}, std::size_t{256},
          std::size_t{1024}}) {
      const std::size_t ops = std::max<std::size_t>(4, 2048 / clients);
      const WireResult r = run_wire(server.port(), service::Codec::kBinary,
                                    clients, ops, "query");
      scale_table.add_row({std::to_string(clients), fmt(r.rps, 0),
                           fmt(r.p50_us, 0), fmt(r.p99_us, 0),
                           std::to_string(r.ops),
                           std::to_string(r.errors)});
      const std::string key = "clients" + std::to_string(clients);
      json["scale_rps/" + key] = r.rps;
      json["scale_p50_us/" + key] = r.p50_us;
      json["scale_p99_us/" + key] = r.p99_us;
      json["scale_ops/" + key] = static_cast<double>(r.ops);
      json["scale_errors/" + key] = static_cast<double>(r.errors);
    }
    scale_table.print();
    server.stop();
    svc.stop();
  }

  if (const char* path = std::getenv("SPARCLE_BENCH_JSON")) {
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmarks\": {\n");
    bool first = true;
    for (const auto& [key, value] : json) {
      std::fprintf(out, "%s    \"%s\": %.1f", first ? "" : ",\n", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("\nresults written to %s\n", path);
  }
  return 0;
}
