/// \file bench_tournament.cpp
/// Policy tournament (docs/policies.md): races every scheduling-policy
/// plugin against every adversarial arrival scenario — diurnal waves,
/// flash crowds, heavy-tailed sizes, correlated regional outages, a
/// multi-tenant GR/BE mix — on the identical network, arrival stream,
/// and churn trace per scenario, then prints the comparative matrix and
/// the per-scenario winners.  With SPARCLE_BENCH_JSON set the full
/// report (per-cell metrics + winners block) is written there; the
/// checked-in BENCH_tournament.json is this output
/// (tools/soak.sh refreshes it).
///
/// Knobs: SPARCLE_TOURNAMENT_ARRIVALS (arrivals per cell, default 4000),
/// SPARCLE_TEST_SEED (default 1).  Exit status 1 when any cell trips an
/// invariant check.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "soak/soak.hpp"

using namespace sparcle;
using bench::fmt;
using bench::Table;

int main() {
  const char* arrivals_env = std::getenv("SPARCLE_TOURNAMENT_ARRIVALS");
  const char* seed_env = std::getenv("SPARCLE_TEST_SEED");

  soak::TournamentOptions options;
  options.arrivals_per_cell =
      arrivals_env && *arrivals_env ? std::strtoull(arrivals_env, nullptr, 0)
                                    : 4000;
  options.seed =
      seed_env && *seed_env ? std::strtoull(seed_env, nullptr, 0) : 1;
  options.invariant_epochs = 2;

  std::printf("Policy tournament: %zu arrivals/cell, seed %llu\n\n",
              options.arrivals_per_cell,
              static_cast<unsigned long long>(options.seed));

  const soak::TournamentReport report = soak::run_tournament(options);

  Table table({"scenario", "policy", "admit%", "GR admit%", "reneged",
               "carried rate", "eff (rate/W)", "p99 us", "rate drift%"});
  for (const soak::TournamentCell& cell : report.cells) {
    const soak::SoakResult& r = cell.result;
    table.add_row({cell.scenario, cell.policy,
                   fmt(100.0 * r.admit_ratio, 1),
                   fmt(100.0 * r.gr_admit_ratio, 1),
                   std::to_string(r.reneged),
                   fmt(r.final_gr_rate + r.final_be_rate, 3),
                   fmt(r.energy_efficiency, 4), fmt(r.submit_p99_us, 0),
                   fmt(100.0 * r.admit_rate_drift, 1)});
  }
  table.print();

  std::printf("\nWinners per scenario:\n");
  std::vector<std::string> scenarios;
  for (const soak::TournamentCell& cell : report.cells)
    if (scenarios.empty() || scenarios.back() != cell.scenario)
      scenarios.push_back(cell.scenario);
  for (const std::string& s : scenarios)
    std::printf("  %-16s admit: %-8s  energy: %-8s  carried: %s\n",
                s.c_str(), report.winner(s, "admit_ratio").c_str(),
                report.winner(s, "energy_efficiency").c_str(),
                report.winner(s, "carried_rate").c_str());

  bench::note(
      "\nEvery policy races the identical network, arrival stream, and "
      "churn trace within a scenario; only the three plugin decision "
      "points differ.  'default' reproduces the pre-refactor scheduler "
      "bit for bit (tests/test_policy.cpp), so any cell an alternative "
      "wins is a real behavioral trade, not noise.");

  if (const char* path = std::getenv("SPARCLE_BENCH_JSON")) {
    std::ofstream out(path);
    out << soak::tournament_json(report, options);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 2;
    }
  }
  if (!report.ok()) {
    for (const soak::TournamentCell& cell : report.cells)
      for (const std::string& v : cell.result.violations)
        std::fprintf(stderr, "FAIL %s x %s:\n%s\n", cell.scenario.c_str(),
                     cell.policy.c_str(), v.c_str());
    return 1;
  }
  return 0;
}
