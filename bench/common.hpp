#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

/// \file common.hpp
/// Formatting helpers shared by the figure-reproduction benchmarks: each
/// bench binary prints the rows/series its paper figure reports, plus a
/// short "paper vs measured" note.

namespace sparcle::bench {

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Prints the table.  With SPARCLE_BENCH_FORMAT=csv in the environment
  /// the output is comma-separated instead (for plotting pipelines).
  void print() const {
    const char* format = std::getenv("SPARCLE_BENCH_FORMAT");
    if (format != nullptr && std::strcmp(format, "csv") == 0) {
      print_csv();
      return;
    }
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
      width[c] = header_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("| ");
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("%-*s | ", static_cast<int>(width[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

  void print_csv() const {
    auto print_row = [](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        const bool quote = row[c].find(',') != std::string::npos;
        std::printf("%s%s%s%s", c ? "," : "", quote ? "\"" : "",
                    row[c].c_str(), quote ? "\"" : "");
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

}  // namespace sparcle::bench
