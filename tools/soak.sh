#!/usr/bin/env bash
# The nightly soak entry (docs/policies.md): two phases, both gated
# in-process by the sparcle_soak binary — invariant violations always
# fail; RSS drift (SPARCLE_SOAK_MAX_RSS_DRIFT, default 5%) and
# admission-rate drift (SPARCLE_SOAK_MAX_RATE_DRIFT, default 3%) gate at
# >= 10k arrivals/cell.
#
#   1. The full policies x scenarios tournament matrix at
#      SPARCLE_SOAK_MATRIX_ARRIVALS arrivals/cell (default 20000), whose
#      comparative report is appended as one labeled entry to the
#      checked-in BENCH_tournament.json trajectory.
#   2. Long-horizon soaks: each SPARCLE_SOAK_LONG_CELLS
#      "scenario:policy" cell at SPARCLE_SOAK_ARRIVALS arrivals
#      (default 1000000 — a simulated-day, million-arrival run; set
#      SPARCLE_SOAK_LONG_CELLS="" for the quick matrix-only mode).
#
# Usage: tools/soak.sh <label> [build-dir]
#   e.g. tools/soak.sh nightly-$(date +%Y%m%d) build
#
# Per-cell JSON/CSV land in SPARCLE_SOAK_ARTIFACT_DIR (default
# soak-artifacts/) for workflow upload; every failure line printed by
# the binary carries the seed, so a 3am red run replays locally with a
# single SPARCLE_TEST_SEED=<n>.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: tools/soak.sh <label> [build-dir]}"
BUILD="${2:-build}"
ARTIFACTS="${SPARCLE_SOAK_ARTIFACT_DIR:-soak-artifacts}"
MATRIX_ARRIVALS="${SPARCLE_SOAK_MATRIX_ARRIVALS:-20000}"
LONG_ARRIVALS="${SPARCLE_SOAK_ARRIVALS:-1000000}"
LONG_CELLS="${SPARCLE_SOAK_LONG_CELLS-steady:default flash_crowd:deadline regional_outage:default}"
SOAK="./${BUILD}/tools/soak/sparcle_soak"

mkdir -p "${ARTIFACTS}"
trap 'exit 130' INT
trap 'exit 143' TERM

cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 2)" \
      --target sparcle_soak_bin >/dev/null

# Phase 1: the full matrix, appended to the BENCH_tournament.json
# trajectory.  The binary exits non-zero on any gate failure.
MATRIX_JSON="${ARTIFACTS}/tournament-${LABEL}.json"
"${SOAK}" --arrivals "${MATRIX_ARRIVALS}" \
          --json "${MATRIX_JSON}" --csv "${ARTIFACTS}/tournament-${LABEL}.csv"

python3 - "${MATRIX_JSON}" "${LABEL}" <<'EOF'
import json, pathlib, sys
raw = json.load(open(sys.argv[1]))
entry = {"label": sys.argv[2], "seed": raw["seed"],
         "arrivals_per_cell": raw["arrivals_per_cell"],
         "winners": raw["winners"], "cells": raw["cells"]}
path = pathlib.Path("BENCH_tournament.json")
doc = json.loads(path.read_text()) if path.exists() else {
    "description": "Scheduling-policy tournament over adversarial "
                   "soak scenarios (docs/policies.md)",
    "trajectory": [],
}
doc["trajectory"].append(entry)
path.write_text(json.dumps(doc, indent=1) + "\n")
print(f"appended '{sys.argv[2]}' to {path}")
EOF

# Phase 2: the long-horizon cells.
for cell in ${LONG_CELLS}; do
  scenario="${cell%%:*}"
  policy="${cell##*:}"
  echo "== long soak ${scenario} x ${policy}: ${LONG_ARRIVALS} arrivals =="
  "${SOAK}" --scenario "${scenario}" --policy "${policy}" \
            --arrivals "${LONG_ARRIVALS}" \
            --json "${ARTIFACTS}/soak-${scenario}-${policy}-${LABEL}.json" \
            --csv "${ARTIFACTS}/soak-${scenario}-${policy}-${LABEL}.csv"
done

echo "soak.sh: all gates clean; artifacts in ${ARTIFACTS}/"
