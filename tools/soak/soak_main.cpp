/// \file soak_main.cpp
/// `sparcle_soak` — the nightly long-horizon soak runner (docs/policies.md,
/// tools/soak.sh).  Sweeps the scheduling-policy × adversarial-scenario
/// matrix (or one cell via flags) over simulated-day arrival streams and
/// gates each cell in-process:
///
///   * invariant checks must stay clean at every sampled epoch,
///   * RSS drift (warmed-up quarter → end) must stay under
///     SPARCLE_SOAK_MAX_RSS_DRIFT (default 5%),
///   * first-half vs second-half admitted-fraction drift must stay under
///     SPARCLE_SOAK_MAX_RATE_DRIFT (default 3%).
///
/// Honors SPARCLE_TEST_SEED (tests/testutil.hpp convention) and
/// SPARCLE_SOAK_ARRIVALS; every failure line carries the seed so any CI
/// hit replays locally with a single variable.  Exit status: 0 clean,
/// 1 gate failure, 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "soak/soak.hpp"

using namespace sparcle;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: sparcle_soak [--policy NAME] [--scenario NAME] [--arrivals N]\n"
      "                    [--seed N] [--shards N] [--json PATH]\n"
      "                    [--csv PATH] [--list]\n"
      "  default: every policy x every scenario;\n"
      "  --shards N runs every cell against an N-shard federated site\n"
      "  (federation conservation check at every invariant epoch);\n"
      "  env: SPARCLE_SOAK_ARRIVALS, SPARCLE_TEST_SEED,\n"
      "       SPARCLE_SOAK_MAX_RSS_DRIFT, SPARCLE_SOAK_MAX_RATE_DRIFT\n");
}

double env_double(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return (env && *env) ? std::strtod(env, nullptr) : fallback;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  return (env && *env) ? std::strtoull(env, nullptr, 0) : fallback;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  soak::TournamentOptions options;
  options.arrivals_per_cell =
      static_cast<std::size_t>(env_u64("SPARCLE_SOAK_ARRIVALS", 100000));
  options.seed = env_u64("SPARCLE_TEST_SEED", 1);
  options.invariant_epochs = 4;
  std::string json_path, csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      options.policies.push_back(value());
    } else if (arg == "--scenario") {
      options.scenarios.push_back(value());
    } else if (arg == "--arrivals") {
      options.arrivals_per_cell = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--shards") {
      options.federated_shards = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--list") {
      std::printf("policies:");
      for (const std::string& p : policy::policy_names())
        std::printf(" %s", p.c_str());
      std::printf("\nscenarios:");
      for (const std::string& s : soak::tournament_scenarios())
        std::printf(" %s", s.c_str());
      std::printf("\n");
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  const double max_rss_drift =
      env_double("SPARCLE_SOAK_MAX_RSS_DRIFT", 0.05);
  const double max_rate_drift =
      env_double("SPARCLE_SOAK_MAX_RATE_DRIFT", 0.03);

  std::printf("sparcle_soak: %zu arrivals/cell, seed %llu "
              "(override with SPARCLE_TEST_SEED)\n",
              options.arrivals_per_cell,
              static_cast<unsigned long long>(options.seed));
  if (options.federated_shards > 0)
    std::printf("sparcle_soak: federated site, %zu shards "
                "(conservation check per invariant epoch)\n",
                options.federated_shards);

  const soak::TournamentReport report = soak::run_tournament(options);
  std::printf("%s", soak::tournament_csv(report).c_str());

  if (!json_path.empty() &&
      !write_file(json_path, soak::tournament_json(report, options)))
    return 2;
  if (!csv_path.empty() &&
      !write_file(csv_path, soak::tournament_csv(report)))
    return 2;

  // Gates.  Every failure line repeats the seed so a nightly hit replays
  // locally with SPARCLE_TEST_SEED=<seed>.  The drift gates need
  // statistics: below 10k arrivals/cell the admission-rate windows are a
  // few hundred samples and binomial noise alone exceeds the budgets, so
  // short (smoke) runs gate only on invariants.
  const bool gate_drift = options.arrivals_per_cell >= 10000;
  if (!gate_drift)
    std::printf("sparcle_soak: %zu arrivals/cell < 10000 — drift gates "
                "reported but not enforced\n",
                options.arrivals_per_cell);
  int failures = 0;
  for (const soak::TournamentCell& cell : report.cells) {
    const soak::SoakResult& r = cell.result;
    const std::string where =
        cell.scenario + " x " + cell.policy + " (seed " +
        std::to_string(r.seed) + ", rerun with SPARCLE_TEST_SEED=" +
        std::to_string(r.seed) + ")";
    for (const std::string& v : r.violations) {
      std::fprintf(stderr, "FAIL %s:\n%s\n", where.c_str(), v.c_str());
      ++failures;
    }
    if (gate_drift && r.rss_drift > max_rss_drift) {
      std::fprintf(stderr,
                   "FAIL %s: RSS drift %.1f%% over the %.1f%% budget\n",
                   where.c_str(), 100.0 * r.rss_drift,
                   100.0 * max_rss_drift);
      ++failures;
    }
    if (gate_drift && r.admit_rate_drift > max_rate_drift) {
      std::fprintf(stderr,
                   "FAIL %s: admission-rate drift %.1f%% over the %.1f%% "
                   "budget\n",
                   where.c_str(), 100.0 * r.admit_rate_drift,
                   100.0 * max_rate_drift);
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "sparcle_soak: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("sparcle_soak: all %zu cells clean\n", report.cells.size());
  return 0;
}
