#!/usr/bin/env bash
# Refreshes the BENCH_service.json trajectory: runs the placement-service
# load generator (bench_service with SPARCLE_BENCH_JSON set) and appends
# one labeled entry to the checked-in trajectory file.
#
# Usage: tools/bench_service.sh <label> [build-dir]
#   e.g. tools/bench_service.sh pr6-after build
#
# The whole benchmarks map is appended verbatim, so the per-stage latency
# breakdown rows bench_service emits (stage_queue_p50_us/batchN,
# stage_apply_*, stage_solve_* — RequestTimeline percentiles) land in the
# trajectory automatically alongside the gated keys below.
#
# After appending, the script gates three things:
#   1. regression: if the new admissions_per_s/batch16 falls more than 3%
#      below the previous trajectory entry's, exit 1.  Override the budget
#      with SPARCLE_BENCH_TOLERANCE (a fraction, default 0.03).
#   2. amortization: batched throughput (speedup/batch16) must stay at
#      least 2x the batch=1 pipeline — the service's reason to exist.
#      Override with SPARCLE_SERVICE_MIN_SPEEDUP (default 2.0).
#   3. admission latency: closed-loop p50 (closed_p50_us/threads1 — one
#      client, so no queue-wait noise) must stay within 1.25x the latest
#      checked-in entry that recorded it.  Override the multiplier with
#      SPARCLE_SERVICE_P50_BUDGET (default 1.25).
#   4. codec: the binary frame codec must beat NDJSON on closed-loop
#      metrics-scrape p50 at 64 clients (wire_p50_us/binary_clients64 <
#      wire_p50_us/json_clients64) — the binary wire path's reason to
#      exist.
#   5. connection scaling: closed-loop query p99 at 256 clients must stay
#      within SPARCLE_SERVICE_SCALE_P99_MULT (default 512 — 2x the
#      linear-in-clients budget, which absorbs timer noise at the
#      microsecond-scale single-client floor) times the 1-client p99, and
#      the 1024-client sustain level must finish with zero client errors.
# Gates 4 and 5 only fire when the wire_*/scale_* keys are present, so
# trajectory entries from before the event-loop server never trip them.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: tools/bench_service.sh <label> [build-dir]}"
BUILD="${2:-build}"
SCRATCH="$(mktemp /tmp/sparcle-bench-XXXX.json)"
# Clean up the scratch file on any exit; on SIGINT/SIGTERM re-raise after
# cleanup so callers still observe a signal death, not a plain exit.
trap 'rm -f "${SCRATCH}"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 2)" \
      --target bench_service >/dev/null

SPARCLE_BENCH_JSON="${SCRATCH}" "./${BUILD}/bench/bench_service"

python3 - "$SCRATCH" "$LABEL" "${SPARCLE_BENCH_TOLERANCE:-0.03}" \
    "${SPARCLE_SERVICE_MIN_SPEEDUP:-2.0}" \
    "${SPARCLE_SERVICE_P50_BUDGET:-1.25}" \
    "${SPARCLE_SERVICE_SCALE_P99_MULT:-512}" <<'EOF'
import json, sys, pathlib
raw = json.load(open(sys.argv[1]))
tolerance = float(sys.argv[3])
min_speedup = float(sys.argv[4])
p50_budget = float(sys.argv[5])
scale_mult = float(sys.argv[6])
entry = {"label": sys.argv[2], "time_unit": "us",
         "benchmarks": dict(raw["benchmarks"])}
path = pathlib.Path("BENCH_service.json")
doc = json.loads(path.read_text()) if path.exists() else {
    "description": "Placement-service load generator: admissions/sec and "
                   "enqueue-to-reply latency on the 64-NCP site, 192 "
                   "arrivals, vs scheduler batch size and client threads "
                   "(bench_service; see docs/service.md)",
    "trajectory": [],
}
prev = doc["trajectory"][-1] if doc["trajectory"] else None
doc["trajectory"].append(entry)
path.write_text(json.dumps(doc, indent=2) + "\n")
print(f"appended '{sys.argv[2]}' to {path}")

GATE = "admissions_per_s/batch16"
if prev and GATE in prev["benchmarks"] and GATE in entry["benchmarks"]:
    base, now = prev["benchmarks"][GATE], entry["benchmarks"][GATE]
    drop = 1.0 - now / base
    print(f"{GATE}: {base:.0f}/s ({prev['label']}) -> {now:.0f}/s "
          f"({-drop:+.2%}, budget -{tolerance:.0%})")
    if drop > tolerance:
        print(f"FAIL: {GATE} regressed {drop:.2%} vs '{prev['label']}' "
              f"— over the {tolerance:.0%} budget", file=sys.stderr)
        sys.exit(1)

SPEEDUP = "speedup/batch16"
speedup = entry["benchmarks"].get(SPEEDUP, 0.0)
print(f"{SPEEDUP}: {speedup:.2f}x (floor {min_speedup:.1f}x)")
if speedup < min_speedup:
    print(f"FAIL: batched admission only {speedup:.2f}x the batch=1 "
          f"pipeline — below the {min_speedup:.1f}x floor", file=sys.stderr)
    sys.exit(1)

P50 = "closed_p50_us/threads1"
baseline = next((e for e in reversed(doc["trajectory"][:-1])
                 if P50 in e["benchmarks"]), None)
if baseline and P50 in entry["benchmarks"]:
    base, now = baseline["benchmarks"][P50], entry["benchmarks"][P50]
    print(f"{P50}: {base:.0f}us ({baseline['label']}) -> {now:.0f}us "
          f"(budget {p50_budget:.2f}x)")
    if now > p50_budget * base:
        print(f"FAIL: closed-loop admission p50 {now:.0f}us is over "
              f"{p50_budget:.2f}x the '{baseline['label']}' baseline "
              f"({base:.0f}us)", file=sys.stderr)
        sys.exit(1)

bench = entry["benchmarks"]
BIN64, JSON64 = "wire_p50_us/binary_clients64", "wire_p50_us/json_clients64"
if BIN64 in bench and JSON64 in bench:
    b, j = bench[BIN64], bench[JSON64]
    print(f"codec p50 @64 clients: binary {b:.0f}us vs json {j:.0f}us "
          f"({j / b:.2f}x)")
    if b >= j:
        print(f"FAIL: binary codec p50 {b:.0f}us does not beat json "
              f"{j:.0f}us at 64 clients", file=sys.stderr)
        sys.exit(1)

P99_1, P99_256 = "scale_p99_us/clients1", "scale_p99_us/clients256"
if P99_1 in bench and P99_256 in bench:
    base, now = bench[P99_1], bench[P99_256]
    print(f"scaling p99: {base:.0f}us @1 client -> {now:.0f}us @256 "
          f"({now / base:.0f}x, budget {scale_mult:.0f}x)")
    if now > scale_mult * base:
        print(f"FAIL: query p99 at 256 clients ({now:.0f}us) is over "
              f"{scale_mult:.0f}x the 1-client p99 ({base:.0f}us)",
              file=sys.stderr)
        sys.exit(1)

ERR1024, OPS1024 = "scale_errors/clients1024", "scale_ops/clients1024"
if OPS1024 in bench:
    errors = bench.get(ERR1024, 0.0)
    print(f"1024-client sustain: {bench[OPS1024]:.0f} ops, "
          f"{errors:.0f} errors")
    if errors > 0:
        print(f"FAIL: {errors:.0f} client errors at the 1024-connection "
              f"sustain level", file=sys.stderr)
        sys.exit(1)
EOF
