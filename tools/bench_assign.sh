#!/usr/bin/env bash
# Refreshes the BENCH_assign.json trajectory: runs the assignment
# microbenchmarks (bench_micro_scaling with SPARCLE_BENCH_JSON set), pulls
# out the per-size means, and appends one labeled entry to the checked-in
# trajectory file.
#
# Usage: tools/bench_assign.sh <label> [build-dir]
#   e.g. tools/bench_assign.sh pr7-after build
#
# After appending, the script gates the assignment hot path: if the new
# BM_SparcleAssignNetworkSize/32 mean exceeds the previous trajectory
# entry's by more than 3% (the uninstalled-observability overhead budget,
# see docs/observability.md) it exits 1 — loudly.  Override the budget
# with SPARCLE_BENCH_TOLERANCE (a fraction, default 0.03).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: tools/bench_assign.sh <label> [build-dir]}"
BUILD="${2:-build}"
SCRATCH="$(mktemp /tmp/sparcle-bench-XXXX.json)"
# Clean up the scratch file on any exit; on SIGINT/SIGTERM re-raise after
# cleanup so callers still observe a signal death, not a plain exit.
trap 'rm -f "${SCRATCH}"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 2)" \
      --target bench_micro_scaling >/dev/null

SPARCLE_BENCH_JSON="${SCRATCH}" \
  "./${BUILD}/bench/bench_micro_scaling" \
  --benchmark_filter='BM_SparcleAssign|BM_WidestPath' \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true

python3 - "$SCRATCH" "$LABEL" "${SPARCLE_BENCH_TOLERANCE:-0.03}" <<'EOF'
import json, sys, pathlib
raw = json.load(open(sys.argv[1]))
tolerance = float(sys.argv[3])
entry = {"label": sys.argv[2], "time_unit": "ns", "benchmarks": {}}
for b in raw.get("benchmarks", []):
    if b.get("aggregate_name") != "mean":
        continue
    name = b["run_name"]
    entry["benchmarks"][name] = round(b["real_time"], 1)
path = pathlib.Path("BENCH_assign.json")
doc = json.loads(path.read_text()) if path.exists() else {
    "description": "Assignment hot-path trajectory "
                   "(mean real time, ns; see docs/perf.md)",
    "trajectory": [],
}
prev = doc["trajectory"][-1] if doc["trajectory"] else None
doc["trajectory"].append(entry)
path.write_text(json.dumps(doc, indent=2) + "\n")
print(f"appended '{sys.argv[2]}' to {path}")

GATE = "BM_SparcleAssignNetworkSize/32"
if prev and GATE in prev["benchmarks"] and GATE in entry["benchmarks"]:
    base, now = prev["benchmarks"][GATE], entry["benchmarks"][GATE]
    overhead = now / base - 1.0
    print(f"{GATE}: {base:.1f} ns ({prev['label']}) -> {now:.1f} ns "
          f"({overhead:+.2%}, budget {tolerance:.0%})")
    if overhead > tolerance:
        print(f"FAIL: {GATE} regressed {overhead:.2%} vs '{prev['label']}' "
              f"— over the {tolerance:.0%} budget (docs/observability.md)",
              file=sys.stderr)
        sys.exit(1)
EOF
