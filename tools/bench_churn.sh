#!/usr/bin/env bash
# Refreshes the BENCH_churn.json trajectory: runs bench_churn (which
# writes its part-2 repair-comparison results as a flat JSON map when
# SPARCLE_BENCH_JSON is set) and appends one labeled entry.
#
# Usage: tools/bench_churn.sh <label> [build-dir]
#   e.g. tools/bench_churn.sh pr7-after build
#
# After appending, the script gates the repair tail: over *active*
# repairs (working set non-empty — the all-events distribution is
# bimodal because most churn hits relays carrying nothing), incremental
# repair's p99 must stay within SPARCLE_CHURN_TAIL_RATIO (default 20) of
# its p50.  A fat tail means a repair class is falling off the
# incremental path (cold PF solves, rebalance fallbacks).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: tools/bench_churn.sh <label> [build-dir]}"
BUILD="${2:-build}"
SCRATCH="$(mktemp /tmp/sparcle-bench-XXXX.json)"
trap 'rm -f "${SCRATCH}"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 2)" \
      --target bench_churn >/dev/null

SPARCLE_BENCH_JSON="${SCRATCH}" "./${BUILD}/bench/bench_churn"

python3 - "$SCRATCH" "$LABEL" "${SPARCLE_CHURN_TAIL_RATIO:-20}" <<'EOF'
import json, sys, pathlib
raw = json.load(open(sys.argv[1]))
max_ratio = float(sys.argv[3])
entry = {"label": sys.argv[2], "time_unit": "us",
         "benchmarks": raw["benchmarks"]}
path = pathlib.Path("BENCH_churn.json")
doc = json.loads(path.read_text()) if path.exists() else {
    "description": "Churn replay: incremental repair() vs full "
                   "rebalance() (bench_churn part 2; see docs/churn.md)",
    "trajectory": [],
}
doc["trajectory"].append(entry)
path.write_text(json.dumps(doc, indent=1) + "\n")
print(f"appended '{sys.argv[2]}' to {path}")

P50 = "repair_active_p50_us/incremental"
P99 = "repair_active_p99_us/incremental"
p50, p99 = entry["benchmarks"][P50], entry["benchmarks"][P99]
ratio = p99 / max(p50, 1e-9)
print(f"active repair tail: p99 {p99:.1f}us = {ratio:.1f}x p50 {p50:.1f}us "
      f"(budget {max_ratio:.0f}x)")
if ratio > max_ratio:
    print(f"FAIL: active-repair p99 is {ratio:.1f}x p50 — over the "
          f"{max_ratio:.0f}x flat-tail budget", file=sys.stderr)
    sys.exit(1)
EOF
