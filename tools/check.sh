#!/usr/bin/env bash
# CI-style verification: the tier-1 build + full ctest, then the same under
# ASan/UBSan (SPARCLE_SANITIZE, see the top-level CMakeLists.txt), with the
# assignment-equivalence property test called out explicitly since it
# guards the memoized+parallel fast path.
#
# Usage: tools/check.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== tier-1: configure + build + ctest (build/) ==="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "=== sanitize pass skipped ==="
  exit 0
fi

echo "=== ASan/UBSan: configure + build + ctest (build-asan/) ==="
cmake -B build-asan -S . -DSPARCLE_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "=== equivalence property test under sanitizers ==="
./build-asan/tests/test_assign_equivalence

echo "=== PF warm-start property test under sanitizers ==="
# Warm vs cold solver equality across randomized delta chains; the warm
# path touches saved duals, so run it where use-after-free would show.
./build-asan/tests/test_fairness_warm

echo "=== invariant fuzz harness under sanitizers ==="
# The full checker + oracle + shrinking pipeline (docs/testing.md); raise
# SPARCLE_FUZZ_ITERS for a nightly-length run.
SPARCLE_FUZZ_ITERS="${SPARCLE_FUZZ_ITERS:-200}" \
  ./build-asan/tests/test_invariants_fuzz

echo "OK: tier-1 and sanitized suites passed."
