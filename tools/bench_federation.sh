#!/usr/bin/env bash
# Refreshes the BENCH_federation.json trajectory: runs the federated
# placement scaling benchmark (bench_federation with SPARCLE_BENCH_JSON
# set) and appends one labeled entry to the checked-in trajectory file.
#
# Usage: tools/bench_federation.sh <label> [build-dir]
#   e.g. tools/bench_federation.sh pr7-after build
#
# bench_federation replays one deterministic arrival stream (locality
# 0.9, 10% guaranteed-rate) against a 2048-NCP 32-region soak site at
# shard counts 1 -> 16; shards=1 is the single-global-scheduler baseline.
# Every epoch ends with the per-shard invariant checker plus the
# federation conservation check, timer stopped.
#
# After appending, the script gates three things:
#   1. scaling: aggregate admission throughput at 8 shards must be at
#      least 5x the single-scheduler baseline (speedup/shards8).
#      Override the floor with SPARCLE_FEDERATION_MIN_SPEEDUP.
#   2. integrity: every sampled epoch on every axis must have passed its
#      conservation check (all_checks_clean == 1).  Not overridable — a
#      throughput number from a corrupted scheduler state is worthless.
#   3. regression: if the new admissions_per_s/shards8 falls more than
#      5% below the previous trajectory entry's, exit 1.  Override the
#      budget with SPARCLE_BENCH_TOLERANCE (a fraction, default 0.05).
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:?usage: tools/bench_federation.sh <label> [build-dir]}"
BUILD="${2:-build}"
SCRATCH="$(mktemp /tmp/sparcle-bench-XXXX.json)"
trap 'rm -f "${SCRATCH}"' EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 2)" \
      --target bench_federation >/dev/null

SPARCLE_BENCH_JSON="${SCRATCH}" "./${BUILD}/bench/bench_federation"

python3 - "$SCRATCH" "$LABEL" "${SPARCLE_FEDERATION_MIN_SPEEDUP:-5.0}" \
    "${SPARCLE_BENCH_TOLERANCE:-0.05}" <<'EOF'
import json, sys, pathlib
raw = json.load(open(sys.argv[1]))
min_speedup = float(sys.argv[3])
tolerance = float(sys.argv[4])
entry = {"label": sys.argv[2], "benchmarks": dict(raw["benchmarks"])}
path = pathlib.Path("BENCH_federation.json")
doc = json.loads(path.read_text()) if path.exists() else {
    "description": "Federated placement scaling: aggregate admissions/sec "
                   "on the 2048-NCP 32-region soak site vs regional shard "
                   "count (bench_federation; see docs/federation.md). "
                   "shards=1 is the single global scheduler; every epoch "
                   "passes the per-shard invariant checker plus the "
                   "federation conservation check with the timer stopped.",
    "trajectory": [],
}
prev = doc["trajectory"][-1] if doc["trajectory"] else None
doc["trajectory"].append(entry)
path.write_text(json.dumps(doc, indent=2) + "\n")
print(f"appended '{sys.argv[2]}' to {path}")

bench = entry["benchmarks"]

SPEEDUP = "speedup/shards8"
speedup = bench.get(SPEEDUP, 0.0)
print(f"{SPEEDUP}: {speedup:.2f}x (floor {min_speedup:.1f}x)")
if speedup < min_speedup:
    print(f"FAIL: 8-shard federation only {speedup:.2f}x the single "
          f"global scheduler — below the {min_speedup:.1f}x floor",
          file=sys.stderr)
    sys.exit(1)

clean = bench.get("all_checks_clean", 0.0)
print(f"all_checks_clean: {clean:.0f}")
if clean != 1.0:
    print("FAIL: a sampled epoch failed the federation conservation "
          "check — throughput numbers from corrupted state are void",
          file=sys.stderr)
    sys.exit(1)

GATE = "admissions_per_s/shards8"
if prev and GATE in prev["benchmarks"] and GATE in bench:
    base, now = prev["benchmarks"][GATE], bench[GATE]
    drop = 1.0 - now / base
    print(f"{GATE}: {base:.0f}/s ({prev['label']}) -> {now:.0f}/s "
          f"({-drop:+.2%}, budget -{tolerance:.0%})")
    if drop > tolerance:
        print(f"FAIL: {GATE} regressed {drop:.2%} vs '{prev['label']}' "
              f"— over the {tolerance:.0%} budget", file=sys.stderr)
        sys.exit(1)
EOF
