#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "check/fuzzer.hpp"
#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenario_io.hpp"
#include "testutil.hpp"

// The correctness harness's own unit tests: a clean solution passes every
// check, each invariant wire trips on the specific corruption it guards,
// the oracles accept the real solver on instances where they are sound,
// and — the mutation smoke test — a deliberately broken assigner is
// caught by the checker and minimized into a parseable .scn repro.

namespace sparcle {
namespace {

struct Tiny {
  Network net{ResourceSchema::cpu_only()};
  std::shared_ptr<TaskGraph> graph;
  Application app;
  NcpId a{}, b{};
  CtId src{}, dst{};
};

Tiny make_tiny() {
  Tiny t;
  t.a = t.net.add_ncp("a", ResourceVector::scalar(10));
  t.b = t.net.add_ncp("b", ResourceVector::scalar(8));
  t.net.add_link("ab", t.a, t.b, 20);
  TaskGraph g(ResourceSchema::cpu_only());
  t.src = g.add_ct("src", ResourceVector::scalar(1));
  t.dst = g.add_ct("dst", ResourceVector::scalar(2));
  g.add_tt("t", 4, t.src, t.dst);
  g.finalize();
  t.graph = std::make_shared<TaskGraph>(std::move(g));
  t.app.name = "tiny";
  t.app.graph = t.graph;
  t.app.qoe = QoeSpec::best_effort(1.0);
  t.app.pinned = {{t.src, t.a}, {t.dst, t.b}};
  return t;
}

AssignmentProblem problem_for(const Tiny& t) {
  AssignmentProblem p;
  p.net = &t.net;
  p.graph = t.graph.get();
  p.capacities = CapacitySnapshot(t.net);
  p.pinned = t.app.pinned;
  return p;
}

/// The deliberately broken solver of the mutation smoke test: it solves
/// the problem with the pin constraints stripped, so it returns complete,
/// rate-consistent placements that put pinned CTs wherever is fastest.
class PinIgnoringAssigner : public Assigner {
 public:
  std::string name() const override { return "broken-pins"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override {
    AssignmentProblem unpinned = problem;
    unpinned.pinned.clear();
    return SparcleAssigner().assign(unpinned);
  }
};

/// A second mutant: claims double the rate the placement supports.
class RateInflatingAssigner : public Assigner {
 public:
  std::string name() const override { return "broken-rate"; }
  AssignmentResult assign(const AssignmentProblem& problem) const override {
    AssignmentResult result = SparcleAssigner().assign(problem);
    result.rate *= 2.0;
    return result;
  }
};

TEST(CheckAssignment, CleanSparcleResultPasses) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  const AssignmentResult result = SparcleAssigner().assign(p);
  ASSERT_TRUE(result.feasible) << result.message;
  const check::CheckReport report = check::check_assignment(p, result);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CheckAssignment, InfeasibleResultClaimsNothing) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  AssignmentResult result;
  result.feasible = false;
  result.rate = -42.0;  // garbage is fine: an infeasible result claims nothing
  EXPECT_TRUE(check::check_assignment(p, result).ok());
}

TEST(CheckAssignment, InflatedRateTripsBottleneckWire) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  AssignmentResult result = SparcleAssigner().assign(p);
  ASSERT_TRUE(result.feasible);
  result.rate *= 2.0;
  const check::CheckReport report = check::check_assignment(p, result);
  EXPECT_TRUE(report.has(check::InvariantCode::kRateNotBottleneck))
      << report.to_string();
}

TEST(CheckAssignment, PinViolationTripsPinWire) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  // Host both CTs on b: dst's pin holds, src's pin (-> a) is violated; the
  // co-located TT legitimately has an empty route, so only the pin trips.
  Placement placement(*t.graph);
  placement.place_ct(t.src, t.b);
  placement.place_ct(t.dst, t.b);
  placement.place_tt(0, {});
  AssignmentResult result;
  result.feasible = true;
  result.placement = placement;
  result.rate = bottleneck_rate(t.net, *t.graph, placement, p.capacities);
  const check::CheckReport report = check::check_assignment(p, result);
  EXPECT_TRUE(report.has(check::InvariantCode::kPinViolated))
      << report.to_string();
  EXPECT_FALSE(report.has(check::InvariantCode::kPlacementStructure));
}

TEST(CheckAssignment, IncompletePlacementTripsStructureWire) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  AssignmentResult result;
  result.feasible = true;  // feasible claim with an unplaced graph
  result.placement = Placement(*t.graph);
  result.rate = 1.0;
  const check::CheckReport report = check::check_assignment(p, result);
  EXPECT_TRUE(report.has(check::InvariantCode::kPlacementStructure))
      << report.to_string();
}

TEST(CheckScheduler, CleanStatePasses) {
  const Tiny t = make_tiny();
  Scheduler scheduler(t.net);
  ASSERT_TRUE(scheduler.submit(t.app).admitted);
  const check::CheckReport report = check::check_scheduler_state(scheduler);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CheckScheduler, ValidationHookThrowsOnBrokenAssigner) {
  const Tiny t = make_tiny();
  check::ScopedValidation validation(/*force=*/true);
  ASSERT_TRUE(validation.armed());
  Scheduler broken(t.net, std::make_unique<PinIgnoringAssigner>());
  // With capacities 10 vs 8 the unpinned solve co-locates away from dst's
  // pin, so the post-submit hook must reject the state loudly.
  EXPECT_THROW(broken.submit(t.app), std::logic_error);
}

TEST(CheckScheduler, ValidationHookUninstallsOnScopeExit) {
  const Tiny t = make_tiny();
  {
    check::ScopedValidation validation(/*force=*/true);
    ASSERT_TRUE(validation.armed());
  }
  Scheduler broken(t.net, std::make_unique<PinIgnoringAssigner>());
  EXPECT_NO_THROW(broken.submit(t.app));  // hook gone, nothing throws
}

TEST(Oracles, DifferentialAcceptsSparcleOnTinyTree) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  ASSERT_TRUE(check::exhaustively_enumerable(p));
  ASSERT_TRUE(check::unique_route_topology(t.net));
  const check::DifferentialReport d =
      check::differential_vs_exhaustive(p, SparcleAssigner());
  EXPECT_TRUE(d.report.ok()) << d.report.to_string();
  EXPECT_TRUE(d.heuristic_feasible);
  EXPECT_TRUE(d.optimal_feasible);
  EXPECT_LE(d.gap, 1.0 + 1e-9);
  EXPECT_GT(d.gap, 0.0);
}

TEST(Oracles, DifferentialCatchesInflatedRate) {
  const Tiny t = make_tiny();
  const AssignmentProblem p = problem_for(t);
  const check::DifferentialReport d =
      check::differential_vs_exhaustive(p, RateInflatingAssigner());
  EXPECT_FALSE(d.report.ok());
  // The inflated rate disagrees with the bottleneck formula...
  EXPECT_TRUE(d.report.has(check::InvariantCode::kRateNotBottleneck))
      << d.report.to_string();
  // ...and beats the enumerated optimum on a unique-route topology.
  EXPECT_TRUE(d.report.has(check::InvariantCode::kOracleSuboptimal))
      << d.report.to_string();
}

TEST(Oracles, MonotonicityHoldsForExhaustive) {
  const Tiny t = make_tiny();
  const check::CheckReport report =
      check::oracle_capacity_monotonicity(problem_for(t));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Oracles, ScalingExactForSparcle) {
  const Tiny t = make_tiny();
  const check::CheckReport report =
      check::oracle_scaling(problem_for(t), SparcleAssigner(), 4.0);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Oracles, ScalingRejectsNonPowerOfTwoFactor) {
  const Tiny t = make_tiny();
  const check::CheckReport report =
      check::oracle_scaling(problem_for(t), SparcleAssigner(), 3.0);
  EXPECT_TRUE(report.has(check::InvariantCode::kOracleScalingBroken));
}

TEST(Oracles, UnusedLinkRemovalInvariant) {
  // a -- b directly (wide), plus a narrow a - c - b detour the solver
  // will not take: dropping the detour must not move the rate.
  Tiny t = make_tiny();
  const NcpId c = t.net.add_ncp("c", ResourceVector::scalar(6));
  t.net.add_link("ac", t.a, c, 1.0);
  t.net.add_link("cb", c, t.b, 1.0);
  AssignmentProblem p = problem_for(t);
  const AssignmentResult result = SparcleAssigner().assign(p);
  ASSERT_TRUE(result.feasible);
  const check::CheckReport report =
      check::oracle_unused_link_removal(p, result);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Oracles, ArrivalOrderInvariantOnPinnedTree) {
  Rng rng(testutil::test_seed() + 77);
  check::FuzzOptions options;
  const workload::ScenarioFile scenario =
      check::random_pinned_tree_scenario(rng, options);
  std::vector<std::size_t> reversed(scenario.apps.size());
  for (std::size_t i = 0; i < reversed.size(); ++i)
    reversed[i] = reversed.size() - 1 - i;
  const check::CheckReport report =
      check::oracle_arrival_order(scenario, reversed);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Fuzzer, GeneratedScenariosAreValidAndSerializable) {
  check::FuzzOptions options;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(testutil::test_seed() + seed);
    const workload::ScenarioFile scenario =
        check::random_scenario(rng, options);
    EXPECT_GE(scenario.net.ncp_count(), 2u);
    EXPECT_TRUE(scenario.net.connected());
    ASSERT_FALSE(scenario.apps.empty());
    for (const Application& app : scenario.apps)
      EXPECT_NO_THROW(app.validate());
    // Serialization round-trips through the parser.
    const std::string text = workload::write_scenario(scenario);
    const workload::ScenarioFile reparsed =
        workload::parse_scenario_text(text);
    EXPECT_EQ(reparsed.net.ncp_count(), scenario.net.ncp_count());
    EXPECT_EQ(reparsed.net.link_count(), scenario.net.link_count());
    EXPECT_EQ(reparsed.apps.size(), scenario.apps.size());
  }
}

// The acceptance smoke test: fuzz a deliberately broken assigner; the
// harness must catch it, shrink the failing scenario, and emit a .scn
// repro the parser accepts.
TEST(Fuzzer, MutationSmokeTestCatchesBrokenAssignerAndShrinks) {
  check::FuzzOptions options;
  options.seed = testutil::test_seed() + 0xbad;
  options.iterations = 50;
  options.max_ncps = 4;
  options.max_apps = 2;
  options.repro_dir = ::testing::TempDir();
  const check::AssignerFactory broken = [] {
    return std::make_unique<PinIgnoringAssigner>();
  };

  const check::FuzzOutcome outcome = check::fuzz_scheduler(options, broken);
  ASSERT_TRUE(outcome.failure.has_value())
      << "broken assigner survived " << outcome.iterations_run
      << " fuzz iterations";
  const check::FuzzFailure& failure = *outcome.failure;
  EXPECT_TRUE(failure.report.has(check::InvariantCode::kPinViolated))
      << failure.report.to_string();

  // The shrunk scenario still reproduces the same failure...
  const check::ScenarioVerdict again =
      check::run_scenario_checks(failure.shrunk, broken, options);
  ASSERT_TRUE(again.failed());
  EXPECT_EQ(again.phase, failure.phase);

  // ...is no bigger than the original...
  EXPECT_LE(failure.shrunk.apps.size(), failure.scenario.apps.size());
  EXPECT_LE(failure.shrunk.net.ncp_count(), failure.scenario.net.ncp_count());
  EXPECT_LE(failure.shrunk.net.link_count(),
            failure.scenario.net.link_count());

  // ...and the written repro is a parseable scenario file.
  ASSERT_FALSE(failure.repro_path.empty());
  const workload::ScenarioFile repro =
      workload::load_scenario_file(failure.repro_path);
  EXPECT_EQ(repro.apps.size(), failure.shrunk.apps.size());
  EXPECT_EQ(repro.net.ncp_count(), failure.shrunk.net.ncp_count());
}

}  // namespace
}  // namespace sparcle
