#include "core/capacity_planner.hpp"

#include <gtest/gtest.h>

#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

Network make_site(double relay_cap) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("relay", ResourceVector::scalar(relay_cap));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 2, 1000.0);
  return net;
}

Application make_gr_app(double rate) {
  Application app;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = g;
  app.name = "gr";
  app.qoe = QoeSpec::guaranteed_rate(rate, 0.0);
  app.pinned = {{s, 0}, {t, 2}};
  return app;
}

TEST(CapacityPlanner, CountsExactCopies) {
  // Single-path admission: relay 10 cpu / 5 per unit = 2 units/s total;
  // 0.5/s per copy -> 4 (the tiny src/dst NCPs cannot host a whole copy).
  const Network net = make_site(10.0);
  SchedulerOptions opt;
  opt.max_paths = 1;
  const PlanningResult plan = plan_capacity(net, {make_gr_app(0.5)}, opt);
  EXPECT_EQ(plan.max_copies, 4u);
  EXPECT_NEAR(plan.total_gr_rate, 2.0, 1e-9);
  EXPECT_NE(plan.limiting_reason.find("gr#4"), std::string::npos);
}

TEST(CapacityPlanner, ZeroCopiesWhenOneDoesNotFit) {
  const Network net = make_site(1.0);  // max 0.2 units/s per path
  SchedulerOptions opt;
  opt.max_paths = 1;
  const PlanningResult plan = plan_capacity(net, {make_gr_app(0.5)}, opt);
  EXPECT_EQ(plan.max_copies, 0u);
  EXPECT_FALSE(plan.limiting_reason.empty());
}

TEST(CapacityPlanner, RespectsTheCap) {
  const Network net = make_site(1000.0);
  const PlanningResult plan =
      plan_capacity(net, {make_gr_app(0.1)}, {}, /*max_copies_cap=*/5);
  EXPECT_EQ(plan.max_copies, 5u);
  EXPECT_EQ(plan.limiting_reason, "reached max_copies_cap");
}

TEST(CapacityPlanner, MixedWorkloadsCountJointly) {
  // A GR copy (0.5/s -> 2.5 cpu) plus a BE copy per "tenant": the BE apps
  // always fit (they share), so the GR reservation is the limit.
  const Network net = make_site(10.0);
  Application be = make_gr_app(0.0);
  be.name = "be";
  be.qoe = QoeSpec::best_effort(1.0);
  SchedulerOptions opt;
  opt.max_paths = 1;
  const PlanningResult plan =
      plan_capacity(net, {make_gr_app(0.5), be}, opt);
  // The 4th GR copy would starve the BE tenants to zero rate, which the
  // planner counts as the limit.
  EXPECT_EQ(plan.max_copies, 3u);
  EXPECT_NE(plan.limiting_reason.find("starved"), std::string::npos);
  EXPECT_GT(plan.be_utility, -1e9);
}

TEST(CapacityPlanner, EmptyMixThrows) {
  const Network net = make_site(10.0);
  EXPECT_THROW(plan_capacity(net, {}), std::invalid_argument);
}

TEST(CapacityPlanner, InvalidAppThrows) {
  const Network net = make_site(10.0);
  Application bad = make_gr_app(0.5);
  bad.pinned.clear();
  EXPECT_THROW(plan_capacity(net, {bad}), std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
