/// \file test_scheduler_lifecycle.cpp
/// Scheduler dynamics beyond admission: application departures and network
/// element failures/recoveries (the §III-B "dynamic network conditions").

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

Network make_two_relay_net(double relay_cap = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(relay_cap));
  net.add_ncp("r2", ResourceVector::scalar(relay_cap));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

std::shared_ptr<const TaskGraph> make_graph() {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  return g;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  app.name = name;
  app.graph = make_graph();
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

TEST(SchedulerLifecycle, RemoveUnknownAppReturnsFalse) {
  Scheduler sched(make_two_relay_net());
  EXPECT_FALSE(sched.remove("ghost"));
}

TEST(SchedulerLifecycle, RemovingGrAppReleasesReservation) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  const double reserved_total = sched.gr_residual_capacities().ncp(1)[0] +
                                sched.gr_residual_capacities().ncp(2)[0];
  EXPECT_LT(reserved_total, 20.0);
  ASSERT_TRUE(sched.remove("gr"));
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(1)[0], 10.0);
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(2)[0], 10.0);
  EXPECT_TRUE(sched.placed().empty());
  EXPECT_DOUBLE_EQ(sched.total_gr_rate(), 0.0);
}

TEST(SchedulerLifecycle, DepartureFreesCapacityForNewArrivals) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr1", QoeSpec::guaranteed_rate(3.8, 0.0)))
          .admitted);
  // Nearly everything is reserved; a second large GR app is rejected.
  EXPECT_FALSE(
      sched.submit(make_app("gr2", QoeSpec::guaranteed_rate(3.0, 0.0)))
          .admitted);
  ASSERT_TRUE(sched.remove("gr1"));
  EXPECT_TRUE(
      sched.submit(make_app("gr2", QoeSpec::guaranteed_rate(3.0, 0.0)))
          .admitted);
}

TEST(SchedulerLifecycle, RemovingBeAppRaisesSurvivorsRates) {
  SchedulerOptions opt;
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(10.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 2, 1000.0);
  Scheduler sched(std::move(net), opt);
  Application a = make_app("a", QoeSpec::best_effort(1.0));
  a.pinned = {{0, 0}, {2, 2}};
  Application b = make_app("b", QoeSpec::best_effort(1.0));
  b.pinned = {{0, 0}, {2, 2}};
  ASSERT_TRUE(sched.submit(a).admitted);
  ASSERT_TRUE(sched.submit(b).admitted);
  EXPECT_NEAR(sched.placed()[0].allocated_rate, 1.0, 0.02);
  ASSERT_TRUE(sched.remove("b"));
  // The survivor now gets the whole relay: 10 / 5 = 2.
  EXPECT_NEAR(sched.placed()[0].allocated_rate, 2.0, 0.02);
}

TEST(SchedulerLifecycle, FailedElementStopsBeRate) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(sched.submit(make_app("be", QoeSpec::best_effort(1.0)))
                  .admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  EXPECT_DOUBLE_EQ(sched.placed()[0].allocated_rate, 0.0);
  sched.mark_recovered(ElementKey::ncp(host));
  EXPECT_NEAR(sched.placed()[0].allocated_rate, 2.0, 0.02);
}

TEST(SchedulerLifecycle, FailureMarksGrDegraded) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  EXPECT_TRUE(sched.degraded_gr_apps().empty());
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  const auto degraded = sched.degraded_gr_apps();
  ASSERT_EQ(degraded.size(), 1u);
  EXPECT_EQ(degraded[0], "gr");
  sched.mark_recovered(ElementKey::ncp(host));
  EXPECT_TRUE(sched.degraded_gr_apps().empty());
}

TEST(SchedulerLifecycle, MultipathGrSurvivesSingleFailure) {
  // Two paths at 1.0 each against a 1.0 requirement: losing one relay
  // leaves the guarantee intact.
  Scheduler sched(make_two_relay_net(5.0));
  const auto r =
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.999)));
  // Without failure probabilities, one path gives availability 1 already;
  // force two paths via min-rate above a single relay's capacity instead.
  Scheduler sched2(make_two_relay_net(5.0));
  const auto r2 =
      sched2.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)));
  ASSERT_TRUE(r2.admitted);
  ASSERT_EQ(r2.path_count, 2u);
  (void)r;
  // Only the relay hosting the *second* path fails: the first path alone
  // carries 1.0 < 1.5 -> degraded; recovering clears it.
  const NcpId h2 = sched2.placed()[0].paths[1].placement.ct_host(1);
  sched2.mark_failed(ElementKey::ncp(h2));
  EXPECT_EQ(sched2.degraded_gr_apps().size(), 1u);
  sched2.mark_recovered(ElementKey::ncp(h2));
  EXPECT_TRUE(sched2.degraded_gr_apps().empty());
}

TEST(SchedulerLifecycle, NewArrivalsAvoidFailedElements) {
  Scheduler sched(make_two_relay_net());
  sched.mark_failed(ElementKey::ncp(1));
  const auto r = sched.submit(make_app("be", QoeSpec::best_effort(1.0)));
  ASSERT_TRUE(r.admitted);
  EXPECT_EQ(sched.placed()[0].paths[0].placement.ct_host(1), 2);
}

TEST(SchedulerLifecycle, FailureIsIdempotent) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(sched.submit(make_app("be", QoeSpec::best_effort(1.0)))
                  .admitted);
  sched.mark_failed(ElementKey::ncp(1));
  const double rate = sched.placed()[0].allocated_rate;
  sched.mark_failed(ElementKey::ncp(1));  // again: no change
  EXPECT_DOUBLE_EQ(sched.placed()[0].allocated_rate, rate);
  sched.mark_recovered(ElementKey::ncp(1));
  sched.mark_recovered(ElementKey::ncp(1));  // again: no change
}

TEST(SchedulerLifecycle, RemoveReaddCycleIsStable) {
  Scheduler sched(make_two_relay_net());
  for (int round = 0; round < 5; ++round) {
    const auto r =
        sched.submit(make_app("gr", QoeSpec::guaranteed_rate(2.0, 0.0)));
    ASSERT_TRUE(r.admitted) << "round " << round;
    ASSERT_TRUE(sched.remove("gr"));
  }
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(1)[0], 10.0);
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(2)[0], 10.0);
}

}  // namespace
}  // namespace sparcle
