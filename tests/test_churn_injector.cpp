/// \file test_churn_injector.cpp
/// The fault-injection engine: seeded trace generators (Poisson renewal
/// and correlated bursts), trace file round-trips, injector replay
/// semantics, and the determinism regression — replaying one trace against
/// two identical schedulers must produce bit-identical state.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "sim/churn_injector.hpp"
#include "testutil.hpp"

namespace sparcle {
namespace {

Network make_two_relay_net() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(10.0));
  net.add_ncp("r2", ResourceVector::scalar(10.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = g;
  app.name = name;
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

/// Every observable bit of scheduler state, hex-formatted so two states
/// compare exactly (no decimal rounding).
std::string state_fingerprint(const Scheduler& sched) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const PlacedApp& pa : sched.placed()) {
    os << pa.app.name << " rate=" << pa.allocated_rate << "\n";
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      os << "  path " << k << " rate=" << pa.path_rates[k] << " hosts=";
      const Placement& p = pa.paths[k].placement;
      for (CtId i = 0; i < static_cast<CtId>(p.ct_count()); ++i)
        os << p.ct_host(i) << ",";
      os << " elements=";
      for (const ElementKey& e : pa.paths[k].elements)
        os << (e.kind == ElementKey::Kind::kNcp ? 'n' : 'l') << e.index << ";";
      os << "\n";
    }
  }
  os << "failed=";
  for (const ElementKey& e : sched.failed_elements())
    os << (e.kind == ElementKey::Kind::kNcp ? 'n' : 'l') << e.index << ";";
  os << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Generators

TEST(ChurnGenerate, PoissonIsSortedAlternatingAndSeeded) {
  const Network net = make_two_relay_net();
  sim::ChurnModel model;
  model.default_mtbf = 5.0;
  model.default_mttr = 2.0;
  const sim::ChurnTrace trace =
      sim::generate_poisson_churn(net, model, 60.0, testutil::test_seed() + 1);
  ASSERT_FALSE(trace.events.empty());
  for (std::size_t i = 1; i < trace.events.size(); ++i)
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  // Per element: strictly alternating fail/recover starting with a fail.
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    bool expect_fail = true;
    for (const sim::ChurnEvent& ev : trace.events) {
      if (ev.element != ElementKey::ncp(j)) continue;
      EXPECT_EQ(ev.fail, expect_fail);
      expect_fail = !expect_fail;
      EXPECT_GE(ev.time, 0.0);
      EXPECT_LT(ev.time, 60.0);
    }
  }
  // Deterministic in the seed; different seeds give different traces.
  const sim::ChurnTrace again =
      sim::generate_poisson_churn(net, model, 60.0, testutil::test_seed() + 1);
  EXPECT_EQ(trace.events, again.events);
  const sim::ChurnTrace other =
      sim::generate_poisson_churn(net, model, 60.0, testutil::test_seed() + 2);
  EXPECT_NE(trace.events, other.events);
}

TEST(ChurnGenerate, PerElementOverridesShiftEventCounts) {
  const Network net = make_two_relay_net();
  sim::ChurnModel model;
  model.default_mtbf = 1e9;  // nothing fails by default...
  model.default_mttr = 1.0;
  model.mtbf_override[ElementKey::ncp(1)] = 2.0;  // ...except relay 1
  const sim::ChurnTrace trace =
      sim::generate_poisson_churn(net, model, 100.0, testutil::test_seed());
  ASSERT_FALSE(trace.events.empty());
  for (const sim::ChurnEvent& ev : trace.events)
    EXPECT_EQ(ev.element, ElementKey::ncp(1));
}

TEST(ChurnGenerate, BurstFailsNeighborhoods) {
  const Network net = make_two_relay_net();
  sim::BurstChurnConfig config;
  config.burst_rate = 0.2;
  config.spread_prob = 1.0;  // every neighbor joins
  const sim::ChurnTrace trace =
      sim::generate_burst_churn(net, config, 50.0, testutil::test_seed() + 3);
  ASSERT_FALSE(trace.events.empty());
  for (std::size_t i = 1; i < trace.events.size(); ++i)
    EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  // With full spread, some link joins each burst alongside its epicenter.
  bool saw_link = false;
  for (const sim::ChurnEvent& ev : trace.events)
    saw_link |= ev.element.kind == ElementKey::Kind::kLink;
  EXPECT_TRUE(saw_link);
  const sim::ChurnTrace again =
      sim::generate_burst_churn(net, config, 50.0, testutil::test_seed() + 3);
  EXPECT_EQ(trace.events, again.events);
}

TEST(ChurnGenerate, RejectsNonPositiveMeans) {
  const Network net = make_two_relay_net();
  sim::ChurnModel model;
  model.default_mtbf = 0.0;
  EXPECT_THROW(sim::generate_poisson_churn(net, model, 10.0, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Trace file IO

TEST(ChurnTraceIo, WriteParseRoundTrips) {
  const Network net = make_two_relay_net();
  sim::ChurnModel model;
  model.default_mtbf = 4.0;
  model.default_mttr = 2.0;
  const sim::ChurnTrace trace =
      sim::generate_poisson_churn(net, model, 30.0, testutil::test_seed() + 4);
  ASSERT_FALSE(trace.events.empty());
  const std::string text = sim::write_churn_trace(trace, net);
  const sim::ChurnTrace parsed = sim::parse_churn_trace_text(text, net);
  EXPECT_EQ(trace.events, parsed.events);  // exact, including times
}

TEST(ChurnTraceIo, ParseRejectsMalformedInput) {
  const Network net = make_two_relay_net();
  auto expect_line_error = [&](const std::string& text) {
    try {
      sim::parse_churn_trace_text(text, net);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos)
          << e.what();
    }
  };
  expect_line_error("fail 1.0 ncp:src\n");             // missing header
  expect_line_error("churn v2\n");                     // bad version
  expect_line_error("churn v1\nflip 1.0 ncp:src\n");   // bad verb
  expect_line_error("churn v1\nfail 1.0 ncp:nope\n");  // unknown element
  expect_line_error("churn v1\nfail 1.0 src\n");       // missing kind
  expect_line_error("churn v1\nfail 2.0 ncp:src\nfail 1.0 ncp:dst\n");
}

TEST(ChurnTraceIo, ParseAcceptsCommentsAndBlanks) {
  const Network net = make_two_relay_net();
  const sim::ChurnTrace parsed = sim::parse_churn_trace_text(
      "# a trace\n\nchurn v1\nfail 1.5 link:s1  # relay cut\n"
      "recover 2.5 link:s1\n",
      net);
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].element, ElementKey::link(0));
  EXPECT_TRUE(parsed.events[0].fail);
  EXPECT_DOUBLE_EQ(parsed.events[1].time, 2.5);
  EXPECT_FALSE(parsed.events[1].fail);
}

// ---------------------------------------------------------------------------
// Injector

TEST(ChurnInjector, AppliesEventsAndCountsOutcomes) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  sim::ChurnTrace trace;
  trace.events = {
      {1.0, ElementKey::ncp(1), true},
      {1.5, ElementKey::ncp(1), true},  // redundant double-fail
      {2.0, ElementKey::ncp(1), false},
      {3.0, ElementKey::ncp(2), true},
      {4.0, ElementKey::ncp(2), false},
  };
  sim::ChurnInjector injector(sched, trace);
  EXPECT_DOUBLE_EQ(injector.next_time(), 1.0);
  EXPECT_EQ(injector.run_until(2.0), 3u);
  EXPECT_FALSE(injector.done());
  EXPECT_DOUBLE_EQ(injector.next_time(), 3.0);
  EXPECT_EQ(injector.run_all(), 2u);
  EXPECT_TRUE(injector.done());
  EXPECT_FALSE(injector.step());

  const sim::ChurnInjectorStats& stats = injector.stats();
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.recoveries, 2u);
  EXPECT_EQ(stats.redundant, 1u);
  EXPECT_EQ(stats.repairs, 4u);
  // All healed: the guarantee is carried again.
  EXPECT_TRUE(sched.failed_elements().empty());
  EXPECT_NEAR(sched.total_gr_rate(), 1.0, 1e-9);
}

TEST(ChurnInjector, RepairModesProduceConsistentFinalState) {
  // Sequential (never simultaneous) relay failures: every mode must end
  // with a clean network, and both repairing modes restore the guarantee.
  for (const sim::RepairMode mode :
       {sim::RepairMode::kIncremental, sim::RepairMode::kFullRebalance,
        sim::RepairMode::kNone}) {
    Scheduler sched(make_two_relay_net());
    ASSERT_TRUE(
        sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
            .admitted);
    sim::ChurnTrace trace;
    trace.events = {{1.0, ElementKey::ncp(1), true},
                    {2.0, ElementKey::ncp(1), false},
                    {3.0, ElementKey::ncp(2), true},
                    {4.0, ElementKey::ncp(2), false}};
    sim::ChurnInjectorOptions options;
    options.repair_mode = mode;
    sim::ChurnInjector injector(sched, trace, options);
    injector.run_all();
    EXPECT_TRUE(sched.failed_elements().empty());
    if (mode == sim::RepairMode::kNone)
      EXPECT_EQ(injector.stats().repairs, 0u);
    else
      EXPECT_NEAR(sched.total_gr_rate(), 1.0, 1e-9);
  }
}

TEST(ChurnInjector, IncrementalRecoversFromTotalOutage) {
  // Both relays down at once: a stop-the-world rebalance() cannot bring a
  // zero-path app back (it only tops up apps it shed itself), but the
  // incremental repair's degraded-app scan re-provisions on recovery.
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  sim::ChurnTrace trace;
  trace.events = {{1.0, ElementKey::ncp(1), true},
                  {2.0, ElementKey::ncp(2), true},
                  {3.0, ElementKey::ncp(1), false},
                  {4.0, ElementKey::ncp(2), false}};
  sim::ChurnInjector injector(sched, trace);
  injector.run_all();
  EXPECT_TRUE(sched.failed_elements().empty());
  EXPECT_TRUE(sched.degraded_gr_apps().empty());
  EXPECT_NEAR(sched.total_gr_rate(), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Determinism regression: identical trace, identical schedulers ->
// bit-identical end state.  Guards against unordered-container iteration
// or other nondeterminism sneaking into the repair path.

TEST(ChurnInjector, ReplayingTheSameTraceIsBitIdentical) {
  const Network net = make_two_relay_net();
  sim::ChurnModel model;
  model.default_mtbf = 4.0;
  model.default_mttr = 2.0;
  const sim::ChurnTrace trace =
      sim::generate_poisson_churn(net, model, 40.0, testutil::test_seed() + 5);
  ASSERT_FALSE(trace.events.empty());

  auto run = [&]() {
    Scheduler sched(net);
    EXPECT_TRUE(
        sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
            .admitted);
    EXPECT_TRUE(
        sched.submit(make_app("be", QoeSpec::best_effort(2.0))).admitted);
    EXPECT_TRUE(
        sched.submit(make_app("be2", QoeSpec::best_effort(1.0))).admitted);
    sim::ChurnInjector injector(sched, trace);
    injector.run_all();
    return state_fingerprint(sched);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("gr"), std::string::npos);
}

}  // namespace
}  // namespace sparcle
