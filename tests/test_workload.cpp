#include <gtest/gtest.h>

#include "workload/arrivals.hpp"
#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

namespace sparcle {
namespace {

using namespace workload;

TEST(Stats, MeanOfSample) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(Stats, FractionAtLeast) {
  EXPECT_DOUBLE_EQ(fraction_at_least({1.0, 2.0, 3.0, 4.0}, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least({}, 1.0), 0.0);
}

TEST(Scenarios, LabelsAreHumanReadable) {
  EXPECT_EQ(to_string(BottleneckCase::kLink), "link-bottleneck");
  EXPECT_EQ(to_string(TopologyKind::kStar), "star");
  EXPECT_EQ(to_string(GraphKind::kDiamond), "diamond");
}

TEST(Scenarios, SeedsAreReproducible) {
  ScenarioSpec spec;
  Rng a(42), b(42);
  const Scenario s1 = make_scenario(spec, a);
  const Scenario s2 = make_scenario(spec, b);
  ASSERT_EQ(s1.net.ncp_count(), s2.net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(s1.net.ncp_count()); ++j)
    EXPECT_EQ(s1.net.ncp(j).capacity, s2.net.ncp(j).capacity);
  for (LinkId l = 0; l < static_cast<LinkId>(s1.net.link_count()); ++l)
    EXPECT_DOUBLE_EQ(s1.net.link(l).bandwidth, s2.net.link(l).bandwidth);
}

TEST(Scenarios, BottleneckRegimesHoldByConstruction) {
  // In the link-bottleneck case every NCP has at least 10x more headroom
  // relative to total CT demand than any link has relative to TT demand.
  Rng rng(7);
  ScenarioSpec spec;
  spec.bottleneck = BottleneckCase::kLink;
  const Scenario sc = make_scenario(spec, rng);
  const double ct_total = sc.graph->total_ct_requirement()[0];
  const double tt_total = sc.graph->total_tt_bits();
  double min_ncp_ratio = 1e300, max_link_ratio = 0;
  for (NcpId j = 0; j < static_cast<NcpId>(sc.net.ncp_count()); ++j)
    min_ncp_ratio =
        std::min(min_ncp_ratio, sc.net.ncp(j).capacity[0] / ct_total);
  for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
    max_link_ratio =
        std::max(max_link_ratio, sc.net.link(l).bandwidth / tt_total);
  EXPECT_GT(min_ncp_ratio, max_link_ratio);
}

TEST(Scenarios, MemoryCaseUsesTwoResources) {
  Rng rng(7);
  ScenarioSpec spec;
  spec.bottleneck = BottleneckCase::kMemory;
  const Scenario sc = make_scenario(spec, rng);
  EXPECT_EQ(sc.net.schema().size(), 2u);
  EXPECT_EQ(sc.graph->schema().size(), 2u);
}

TEST(Scenarios, PinsCoverSourceAndSink) {
  Rng rng(9);
  ScenarioSpec spec;
  spec.graph = GraphKind::kLinear;
  const Scenario sc = make_scenario(spec, rng);
  EXPECT_TRUE(sc.pinned.contains(sc.graph->sources()[0]));
  EXPECT_TRUE(sc.pinned.contains(sc.graph->sinks()[0]));
}

TEST(Scenarios, FailProbPropagatesToElements) {
  Rng rng(9);
  ScenarioSpec spec;
  spec.fail_prob = 0.02;
  const Scenario sc = make_scenario(spec, rng);
  for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
    EXPECT_DOUBLE_EQ(sc.net.link(l).fail_prob, 0.02);
}

TEST(Scenarios, ProblemBorrowsScenario) {
  Rng rng(1);
  const Scenario sc = make_scenario(ScenarioSpec{}, rng);
  const AssignmentProblem p = sc.problem();
  EXPECT_EQ(p.net, &sc.net);
  EXPECT_EQ(p.graph, sc.graph.get());
  EXPECT_EQ(p.capacities.ncp_count(), sc.net.ncp_count());
}

TEST(Rng, IsDeterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  EXPECT_EQ(a.uniform_int(0, 100), b.uniform_int(0, 100));
}

TEST(SoakSite, StampsRegionLabelsOnEveryNcp) {
  Rng rng(11);
  const Network net = soak_site(3, 6, rng);
  std::set<std::string> labels;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j) {
    EXPECT_FALSE(net.ncp(j).region.empty()) << net.ncp(j).name;
    labels.insert(net.ncp(j).region);
  }
  // One label per star cluster, "r0".."r2".
  EXPECT_EQ(labels, (std::set<std::string>{"r0", "r1", "r2"}));
}

TEST(Arrivals, LocalityPinsEndpointsInsideOneRegion) {
  Rng rng(5);
  const Network net = soak_site(4, 8, rng);
  std::vector<std::string> region_of(net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    region_of[j] = net.ncp(j).region;

  ArrivalSpec spec;
  spec.arrivals = 200;
  spec.horizon = 2000.0;
  spec.locality = 1.0;  // every endpoint pinned inside the home region
  ArrivalGenerator gen(net, spec, 99);

  Arrival a;
  std::size_t seen = 0;
  while (gen.next(a)) {
    ++seen;
    ASSERT_FALSE(a.app.pinned.empty());
    const std::string home = region_of[a.app.pinned.begin()->second];
    for (const auto& [ct, ncp] : a.app.pinned)
      EXPECT_EQ(region_of[ncp], home) << a.app.name;
  }
  EXPECT_EQ(seen, 200u);
}

TEST(Arrivals, LocalityStreamsAreSeedDeterministic) {
  Rng rng(5);
  const Network net = soak_site(2, 6, rng);
  ArrivalSpec spec;
  spec.arrivals = 50;
  spec.horizon = 500.0;
  spec.locality = 0.9;
  ArrivalGenerator g1(net, spec, 7), g2(net, spec, 7);
  Arrival a, b;
  while (g1.next(a)) {
    ASSERT_TRUE(g2.next(b));
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.app.name, b.app.name);
    EXPECT_EQ(a.app.pinned, b.app.pinned);
  }
  EXPECT_FALSE(g2.next(b));
}

}  // namespace
}  // namespace sparcle

