#include <gtest/gtest.h>

#include "workload/scenarios.hpp"
#include "workload/stats.hpp"

namespace sparcle {
namespace {

using namespace workload;

TEST(Stats, MeanOfSample) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(Stats, FractionAtLeast) {
  EXPECT_DOUBLE_EQ(fraction_at_least({1.0, 2.0, 3.0, 4.0}, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least({}, 1.0), 0.0);
}

TEST(Scenarios, LabelsAreHumanReadable) {
  EXPECT_EQ(to_string(BottleneckCase::kLink), "link-bottleneck");
  EXPECT_EQ(to_string(TopologyKind::kStar), "star");
  EXPECT_EQ(to_string(GraphKind::kDiamond), "diamond");
}

TEST(Scenarios, SeedsAreReproducible) {
  ScenarioSpec spec;
  Rng a(42), b(42);
  const Scenario s1 = make_scenario(spec, a);
  const Scenario s2 = make_scenario(spec, b);
  ASSERT_EQ(s1.net.ncp_count(), s2.net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(s1.net.ncp_count()); ++j)
    EXPECT_EQ(s1.net.ncp(j).capacity, s2.net.ncp(j).capacity);
  for (LinkId l = 0; l < static_cast<LinkId>(s1.net.link_count()); ++l)
    EXPECT_DOUBLE_EQ(s1.net.link(l).bandwidth, s2.net.link(l).bandwidth);
}

TEST(Scenarios, BottleneckRegimesHoldByConstruction) {
  // In the link-bottleneck case every NCP has at least 10x more headroom
  // relative to total CT demand than any link has relative to TT demand.
  Rng rng(7);
  ScenarioSpec spec;
  spec.bottleneck = BottleneckCase::kLink;
  const Scenario sc = make_scenario(spec, rng);
  const double ct_total = sc.graph->total_ct_requirement()[0];
  const double tt_total = sc.graph->total_tt_bits();
  double min_ncp_ratio = 1e300, max_link_ratio = 0;
  for (NcpId j = 0; j < static_cast<NcpId>(sc.net.ncp_count()); ++j)
    min_ncp_ratio =
        std::min(min_ncp_ratio, sc.net.ncp(j).capacity[0] / ct_total);
  for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
    max_link_ratio =
        std::max(max_link_ratio, sc.net.link(l).bandwidth / tt_total);
  EXPECT_GT(min_ncp_ratio, max_link_ratio);
}

TEST(Scenarios, MemoryCaseUsesTwoResources) {
  Rng rng(7);
  ScenarioSpec spec;
  spec.bottleneck = BottleneckCase::kMemory;
  const Scenario sc = make_scenario(spec, rng);
  EXPECT_EQ(sc.net.schema().size(), 2u);
  EXPECT_EQ(sc.graph->schema().size(), 2u);
}

TEST(Scenarios, PinsCoverSourceAndSink) {
  Rng rng(9);
  ScenarioSpec spec;
  spec.graph = GraphKind::kLinear;
  const Scenario sc = make_scenario(spec, rng);
  EXPECT_TRUE(sc.pinned.contains(sc.graph->sources()[0]));
  EXPECT_TRUE(sc.pinned.contains(sc.graph->sinks()[0]));
}

TEST(Scenarios, FailProbPropagatesToElements) {
  Rng rng(9);
  ScenarioSpec spec;
  spec.fail_prob = 0.02;
  const Scenario sc = make_scenario(spec, rng);
  for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
    EXPECT_DOUBLE_EQ(sc.net.link(l).fail_prob, 0.02);
}

TEST(Scenarios, ProblemBorrowsScenario) {
  Rng rng(1);
  const Scenario sc = make_scenario(ScenarioSpec{}, rng);
  const AssignmentProblem p = sc.problem();
  EXPECT_EQ(p.net, &sc.net);
  EXPECT_EQ(p.graph, sc.graph.get());
  EXPECT_EQ(p.capacities.ncp_count(), sc.net.ncp_count());
}

TEST(Rng, IsDeterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  EXPECT_EQ(a.uniform_int(0, 100), b.uniform_int(0, 100));
}

}  // namespace
}  // namespace sparcle
