#include "workload/churn.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy_baselines.hpp"
#include "core/sparcle_assigner.hpp"

namespace sparcle {
namespace {

using namespace workload;

struct Fixture {
  Scenario scenario;
  ScenarioSpec spec;
  double calibration;

  Fixture() {
    Rng rng(3);
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kLinear;
    spec.bottleneck = BottleneckCase::kBalanced;
    spec.ncps = 6;
    scenario = make_scenario(spec, rng);
    const AssignmentProblem p = scenario.problem();
    calibration = SparcleAssigner().assign(p).rate;
  }

  ChurnStats run(const ChurnConfig& cfg, std::uint64_t seed,
                 std::unique_ptr<Assigner> assigner = nullptr) {
    return run_churn(scenario.net, spec, scenario.pinned.begin()->second,
                     scenario.pinned.rbegin()->second, calibration,
                     std::move(assigner), cfg, seed);
  }
};

TEST(Churn, IsDeterministicInSeed) {
  Fixture f;
  ChurnConfig cfg;
  cfg.horizon = 100.0;
  const ChurnStats a = f.run(cfg, 42);
  const ChurnStats b = f.run(cfg, 42);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.avg_carried_gr_rate, b.avg_carried_gr_rate);
}

TEST(Churn, CountsAreConsistent) {
  Fixture f;
  ChurnConfig cfg;
  cfg.horizon = 150.0;
  const ChurnStats s = f.run(cfg, 7);
  EXPECT_EQ(s.arrivals, s.admitted + s.rejected);
  EXPECT_GT(s.arrivals, 30u);  // ~0.5/t * 150t
  EXPECT_GE(s.admitted_fraction, 0.0);
  EXPECT_LE(s.admitted_fraction, 1.0);
  EXPECT_GE(s.avg_concurrent_apps, 0.0);
}

TEST(Churn, LightLoadAdmitsAlmostEverything) {
  Fixture f;
  ChurnConfig cfg;
  cfg.arrival_rate = 0.05;
  cfg.mean_lifetime = 2.0;  // utilization ~0.1 concurrent apps
  cfg.horizon = 400.0;
  cfg.gr_request_lo = 0.05;
  cfg.gr_request_hi = 0.15;
  const ChurnStats s = f.run(cfg, 11);
  EXPECT_GE(s.admitted_fraction, 0.95);
}

TEST(Churn, HeavyLoadRejectsSome) {
  Fixture f;
  ChurnConfig cfg;
  cfg.arrival_rate = 2.0;
  cfg.mean_lifetime = 50.0;
  cfg.horizon = 200.0;
  cfg.gr_fraction = 1.0;
  cfg.gr_request_lo = 0.4;
  cfg.gr_request_hi = 0.8;
  const ChurnStats s = f.run(cfg, 11);
  EXPECT_LT(s.admitted_fraction, 0.6);
  EXPECT_GT(s.avg_carried_gr_rate, 0.0);
}

TEST(Churn, CarriedRateNeverExceedsCalibration) {
  // The star's capacity caps what can be reserved at any instant.
  Fixture f;
  ChurnConfig cfg;
  cfg.arrival_rate = 2.0;
  cfg.gr_fraction = 1.0;
  cfg.horizon = 200.0;
  const ChurnStats s = f.run(cfg, 13);
  // Multiple disjoint relays can carry more than one solo path, but not
  // more than a small multiple of it on a star.
  EXPECT_LE(s.avg_carried_gr_rate, 8.0 * f.calibration);
}

TEST(Churn, WorksWithBaselineAssigners) {
  Fixture f;
  ChurnConfig cfg;
  cfg.horizon = 100.0;
  const ChurnStats s =
      f.run(cfg, 17, std::make_unique<GreedySortedAssigner>());
  EXPECT_GT(s.arrivals, 0u);
}

TEST(Churn, RejectsBadConfig) {
  Fixture f;
  ChurnConfig cfg;
  cfg.horizon = -1;
  EXPECT_THROW(f.run(cfg, 1), std::invalid_argument);
  ChurnConfig cfg2;
  cfg2.arrival_rate = 0;
  EXPECT_THROW(f.run(cfg2, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
