#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stream_simulator.hpp"

namespace sparcle {
namespace {

using namespace sim;

/// src(n0) -> work(n1, 5 cpu over 10) -> sink(n1), one 4-bit hop at 2 b/s.
struct Fixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  Placement placement;

  Fixture() {
    net.add_ncp("n0", ResourceVector::scalar(10));
    net.add_ncp("n1", ResourceVector::scalar(10));
    net.add_link("l", 0, 1, 2.0);
    const CtId s = graph.add_ct("s", ResourceVector::scalar(0));
    const CtId w = graph.add_ct("w", ResourceVector::scalar(5));
    const CtId t = graph.add_ct("t", ResourceVector::scalar(0));
    graph.add_tt("sw", 4.0, s, w);
    graph.add_tt("wt", 0.0, w, t);
    graph.finalize();
    placement = Placement(graph);
    placement.place_ct(s, 0);
    placement.place_ct(w, 1);
    placement.place_ct(t, 1);
    placement.place_tt(0, {0});
    placement.place_tt(1, {});
  }
};

TEST(Trace, RecordsTheFullUnitLifecycle) {
  Fixture f;
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 0.05);  // one unit per 20 s
  VectorTraceSink trace;
  sim.set_trace_sink(&trace);
  (void)sim.run(25.0);  // exactly two emissions, first fully completes

  // First unit: emitted, hop enqueued+finished, ct enqueued+finished (w),
  // sink ct enqueued+finished, delivered.
  std::size_t emitted = 0, delivered = 0, hop_fin = 0, ct_fin = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.unit != 0) continue;
    switch (e.kind) {
      case TraceEvent::Kind::kEmitted: ++emitted; break;
      case TraceEvent::Kind::kDelivered: ++delivered; break;
      case TraceEvent::Kind::kHopFinished: ++hop_fin; break;
      case TraceEvent::Kind::kCtFinished: ++ct_fin; break;
      default: break;
    }
  }
  EXPECT_EQ(emitted, 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(hop_fin, 1u);
  EXPECT_EQ(ct_fin, 3u);  // s, w, t
}

TEST(Trace, AnalysisRecoversStageSojourns) {
  Fixture f;
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 0.05);  // isolated units
  VectorTraceSink trace;
  sim.set_trace_sink(&trace);
  (void)sim.run(400.0);

  const TraceAnalysis a = analyze_trace(trace.events(), f.graph);
  EXPECT_GT(a.delivered_units, 10u);
  // Isolated unit: transfer 4/2 = 2 s, work 5/10 = 0.5 s.
  EXPECT_NEAR(a.tt_mean_sojourn[0], 2.0, 1e-6);
  EXPECT_NEAR(a.ct_mean_sojourn[1], 0.5, 1e-6);
  EXPECT_NEAR(a.mean_latency, 2.5, 1e-6);
  // Every sojourn is identical for isolated units, so the distribution is
  // degenerate: p50 == p99 == mean, and samples == delivered units.
  EXPECT_EQ(a.ct_samples[1], a.delivered_units);
  EXPECT_EQ(a.tt_samples[0], a.delivered_units);
  EXPECT_NEAR(a.tt_p50_sojourn[0], 2.0, 1e-6);
  EXPECT_NEAR(a.tt_p99_sojourn[0], 2.0, 1e-6);
  EXPECT_NEAR(a.ct_p50_sojourn[1], 0.5, 1e-6);
  EXPECT_NEAR(a.ct_p99_sojourn[1], 0.5, 1e-6);
  // Stage sums reconstruct the end-to-end latency for a chain.
  const double sum = a.ct_mean_sojourn[0] + a.ct_mean_sojourn[1] +
                     a.ct_mean_sojourn[2] + a.tt_mean_sojourn[0] +
                     a.tt_mean_sojourn[1];
  EXPECT_NEAR(sum, a.mean_latency, 1e-6);
}

TEST(Trace, AnalysisMatchesSimulatorStats) {
  Fixture f;
  StreamSimulator sim(f.net, 3);
  sim.add_stream(f.graph, f.placement, 0.3);  // mild queueing
  VectorTraceSink trace;
  sim.set_trace_sink(&trace);
  const SimReport rep = sim.run(300.0);  // no warmup: all units traced
  const TraceAnalysis a = analyze_trace(trace.events(), f.graph);
  EXPECT_EQ(a.delivered_units, rep.streams[0].delivered);
  EXPECT_NEAR(a.mean_latency, rep.streams[0].mean_latency, 1e-9);
  // Under queueing the tail stretches past the median.
  EXPECT_GE(a.tt_p99_sojourn[0], a.tt_p50_sojourn[0]);
  EXPECT_GE(a.tt_p99_sojourn[0], a.tt_mean_sojourn[0] - 1e-9);
}

TEST(Trace, CsvSinkWritesHeaderAndRows) {
  std::ostringstream os;
  CsvTraceSink csv(os);
  csv.record({1.5, 0, 7, TraceEvent::Kind::kCtEnqueued, 2, 0});
  csv.record({2.5, 0, 7, TraceEvent::Kind::kDelivered, -1, 0});
  const std::string text = os.str();
  EXPECT_NE(text.find("time,stream,unit,kind,kind_code,task,hop"),
            std::string::npos);
  EXPECT_NE(text.find("1.5,0,7,ct_enqueued,1,2,0"), std::string::npos);
  EXPECT_NE(text.find("2.5,0,7,delivered,5,-1,0"), std::string::npos);
}

TEST(Trace, PerStreamFiltering) {
  Fixture f;
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 0.05);
  sim.add_stream(f.graph, f.placement, 0.05);
  VectorTraceSink trace;
  sim.set_trace_sink(&trace);
  (void)sim.run(100.0);
  const TraceAnalysis a0 = analyze_trace(trace.events(), f.graph, 0);
  const TraceAnalysis a1 = analyze_trace(trace.events(), f.graph, 1);
  EXPECT_GT(a0.delivered_units, 0u);
  EXPECT_GT(a1.delivered_units, 0u);
  const TraceAnalysis none = analyze_trace(trace.events(), f.graph, 9);
  EXPECT_EQ(none.delivered_units, 0u);
}

}  // namespace
}  // namespace sparcle
