#include "federation/federation.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/scheduler.hpp"
#include "federation/check.hpp"
#include "federation/shard_plan.hpp"
#include "service/client.hpp"
#include "service/event_server.hpp"
#include "workload/arrivals.hpp"
#include "workload/rng.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle {
namespace {

using federation::ConservationReport;
using federation::FederatedService;
using federation::FederationOptions;
using federation::ShardPlan;
using service::ServiceResult;

// ---------------------------------------------------------------------------
// Fixtures

/// A two-region barbell: a0 - a1 in region "r0", b0 - b1 in region "r1",
/// joined by the single boundary link "ab".  a1/b0 are fat relays; b1 (the
/// usual cross-shard sink) carries `sink_cap` CPU so tests can fill it.
Network make_two_region_net(double relay_cap = 10.0, double sink_cap = 2.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a0", ResourceVector::scalar(1.0), 0.0, "r0");
  net.add_ncp("a1", ResourceVector::scalar(relay_cap), 0.0, "r0");
  net.add_ncp("b0", ResourceVector::scalar(relay_cap), 0.0, "r1");
  net.add_ncp("b1", ResourceVector::scalar(sink_cap), 0.0, "r1");
  net.add_link("aa", 0, 1, 1000.0);
  net.add_link("ab", 1, 2, 1000.0);  // the boundary
  net.add_link("bb", 2, 3, 1000.0);
  return net;
}

/// source (0 cpu) -> mid (`mid_cpu`) -> sink (`sink_cpu`), 1-bit TTs.
std::shared_ptr<const TaskGraph> make_pipeline_graph(double mid_cpu,
                                                     double sink_cpu = 0.0) {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(mid_cpu));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(sink_cpu));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  return g;
}

Application make_app(const std::string& name, QoeSpec qoe, NcpId src,
                     NcpId dst, double mid_cpu = 4.0, double sink_cpu = 0.0) {
  Application app;
  app.name = name;
  app.graph = make_pipeline_graph(mid_cpu, sink_cpu);
  app.qoe = qoe;
  app.pinned = {{0, src}, {2, dst}};
  return app;
}

/// Asserts the federation conservation check is clean after draining.
void expect_conserved(FederatedService& fed) {
  fed.drain();
  const ConservationReport report = federation::check_federation(fed);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

/// Counter value from a ServiceStats metrics snapshot (0 when absent).
double counter(const service::ServiceStats& stats, const std::string& name) {
  const auto it = stats.metrics.find(name);
  return it == stats.metrics.end() ? 0.0 : it->second;
}

/// A federation over the barbell with a test hook seam: the returned
/// shared function is invoked from FederationOptions::on_reserved, so a
/// test can arm/disarm per-submit behavior after construction.
struct HookedFed {
  std::shared_ptr<std::function<void(const std::string&)>> hook;
  std::unique_ptr<FederatedService> fed;
};

HookedFed make_hooked_fed(Network net, std::size_t shards = 2) {
  HookedFed h;
  h.hook = std::make_shared<std::function<void(const std::string&)>>();
  FederationOptions opt;
  opt.shards = shards;
  opt.on_reserved = [hook = h.hook](const std::string& name) {
    if (*hook) (*hook)(name);
  };
  h.fed = std::make_unique<FederatedService>(std::move(net), opt);
  return h;
}

// ---------------------------------------------------------------------------
// ShardPlan

TEST(ShardPlan, RegionPlanSplitsTheBarbell) {
  const Network net = make_two_region_net();
  const ShardPlan plan = federation::plan_by_region(net, 2);

  ASSERT_EQ(plan.shard_count(), 2u);
  EXPECT_EQ(plan.shards[0].regions, std::vector<std::string>{"r0"});
  EXPECT_EQ(plan.shards[1].regions, std::vector<std::string>{"r1"});
  EXPECT_EQ(plan.shards[0].global_ncps, (std::vector<NcpId>{0, 1}));
  EXPECT_EQ(plan.shards[1].global_ncps, (std::vector<NcpId>{2, 3}));
  EXPECT_EQ(plan.shards[0].net.ncp(0).name, "a0");
  EXPECT_EQ(plan.shards[1].net.ncp(1).name, "b1");
  // Intra-region links land in their shard; "ab" is the lone boundary.
  EXPECT_EQ(plan.shards[0].global_links, (std::vector<LinkId>{0}));
  EXPECT_EQ(plan.shards[1].global_links, (std::vector<LinkId>{2}));
  EXPECT_EQ(plan.boundary_links, (std::vector<LinkId>{1}));
  EXPECT_TRUE(plan.is_boundary(1));
  EXPECT_FALSE(plan.is_boundary(0));
  EXPECT_EQ(plan.shard_of_ncp, (std::vector<std::size_t>{0, 0, 1, 1}));
  EXPECT_EQ(plan.local_ncp, (std::vector<NcpId>{0, 1, 0, 1}));
  // Capacities and region labels survive into the shard sub-networks.
  EXPECT_DOUBLE_EQ(plan.shards[1].net.ncp(0).capacity[0], 10.0);
  EXPECT_EQ(plan.shards[0].net.ncp(0).region, "r0");
}

TEST(ShardPlan, GraphCutBalancesAnUnlabeledPath) {
  Network net(ResourceSchema::cpu_only());
  for (int i = 0; i < 6; ++i)
    net.add_ncp("n" + std::to_string(i), ResourceVector::scalar(1.0));
  for (int i = 0; i < 5; ++i)
    net.add_link("l" + std::to_string(i), i, i + 1, 10.0);

  const ShardPlan plan = federation::plan_by_graph_cut(net, 2);
  ASSERT_EQ(plan.shard_count(), 2u);
  EXPECT_EQ(plan.shards[0].global_ncps.size(), 3u);
  EXPECT_EQ(plan.shards[1].global_ncps.size(), 3u);
  EXPECT_TRUE(plan.shards[0].regions.empty());
  EXPECT_FALSE(plan.boundary_links.empty());
  for (const LinkId l : plan.boundary_links) {
    const Link& link = net.link(l);
    EXPECT_NE(plan.shard_of_ncp[link.a], plan.shard_of_ncp[link.b]);
  }
  // Deterministic: the same input yields the identical assignment.
  const ShardPlan again = federation::plan_by_graph_cut(net, 2);
  EXPECT_EQ(plan.shard_of_ncp, again.shard_of_ncp);
}

TEST(ShardPlan, MakeShardPlanPrefersRegionLabels) {
  const ShardPlan labeled =
      federation::make_shard_plan(make_two_region_net(), 2);
  EXPECT_FALSE(labeled.shards[0].regions.empty());

  Network plain(ResourceSchema::cpu_only());
  plain.add_ncp("x", ResourceVector::scalar(1.0));
  plain.add_ncp("y", ResourceVector::scalar(1.0));
  plain.add_link("xy", 0, 1, 10.0);
  const ShardPlan cut = federation::make_shard_plan(plain, 2);
  EXPECT_TRUE(cut.shards[0].regions.empty());  // fell back to the graph cut
}

TEST(ShardPlan, SoakSiteRegionsMapOntoShards) {
  Rng rng(7);
  const Network net = workload::soak_site(4, 8, rng);
  const ShardPlan plan = federation::make_shard_plan(net, 4);

  ASSERT_EQ(plan.shard_count(), 4u);
  std::size_t covered = 0;
  for (const federation::Shard& shard : plan.shards) {
    EXPECT_EQ(shard.regions.size(), 1u);  // one soak region per shard
    covered += shard.global_ncps.size();
  }
  EXPECT_EQ(covered, net.ncp_count());
  // The backbone ring between hubs is exactly the boundary set.
  EXPECT_FALSE(plan.boundary_links.empty());
  for (const LinkId l : plan.boundary_links) {
    const Link& link = net.link(l);
    EXPECT_NE(plan.shard_of_ncp[link.a], plan.shard_of_ncp[link.b]);
  }
}

TEST(ShardPlan, BuilderErrors) {
  const Network net = make_two_region_net();
  EXPECT_THROW(federation::plan_by_region(net, 0), std::invalid_argument);
  EXPECT_THROW(federation::plan_by_region(net, 3), std::invalid_argument);
  EXPECT_THROW(federation::plan_by_graph_cut(net, 5), std::invalid_argument);

  Network plain(ResourceSchema::cpu_only());
  plain.add_ncp("x", ResourceVector::scalar(1.0));
  EXPECT_THROW(federation::plan_by_region(plain, 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scheduler external reservations (the per-shard half of the protocol)

TEST(ExternalReservation, ReserveCommitReleaseLifecycle) {
  const Network net = make_two_region_net();
  Scheduler sc(net);

  LoadMap load = LoadMap::zeros(net);
  load.ncp_load(1)[0] = 2.0;
  load.link_load(0) = 5.0;
  const std::vector<ElementKey> elements = {ElementKey::ncp(1),
                                            ElementKey::link(0)};

  std::string why;
  ASSERT_TRUE(sc.reserve_external("x", load, elements, 1.0, &why)) << why;
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().ncp(1)[0], 8.0);
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().link(0), 995.0);
  EXPECT_FALSE(sc.external_reservations().at("x").committed);
  EXPECT_TRUE(check::check_scheduler_state(sc, {}).ok());

  // Names are unique; the failed reserve mutates nothing.
  EXPECT_FALSE(sc.reserve_external("x", load, elements, 1.0, &why));
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().ncp(1)[0], 8.0);

  ASSERT_TRUE(sc.commit_external("x", &why)) << why;
  EXPECT_TRUE(sc.external_reservations().at("x").committed);
  EXPECT_FALSE(sc.commit_external("x", &why));  // double commit refused
  EXPECT_TRUE(check::check_scheduler_state(sc, {}).ok());

  ASSERT_TRUE(sc.release_external("x"));
  EXPECT_FALSE(sc.release_external("x"));  // unknown name: no-op
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().ncp(1)[0], 10.0);
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().link(0), 1000.0);
  EXPECT_TRUE(sc.external_reservations().empty());
  EXPECT_TRUE(check::check_scheduler_state(sc, {}).ok());
}

TEST(ExternalReservation, ReserveRespectsResidualAndFailures) {
  const Network net = make_two_region_net();
  Scheduler sc(net);

  LoadMap load = LoadMap::zeros(net);
  load.ncp_load(1)[0] = 6.0;
  const std::vector<ElementKey> elements = {ElementKey::ncp(1)};

  // Over capacity: 2 x 6 > 10 refuses without mutating.
  std::string why;
  EXPECT_FALSE(sc.reserve_external("big", load, elements, 2.0, &why));
  EXPECT_NE(why.find("a1"), std::string::npos) << why;
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().ncp(1)[0], 10.0);
  EXPECT_TRUE(sc.external_reservations().empty());

  // A failed element refuses the reserve outright.
  sc.mark_failed(ElementKey::ncp(1));
  EXPECT_FALSE(sc.reserve_external("dead", load, elements, 1.0, &why));
  sc.mark_recovered(ElementKey::ncp(1));

  // Failure BETWEEN the phases poisons the commit (the distributed abort
  // trigger); the release still restores everything.
  ASSERT_TRUE(sc.reserve_external("race", load, elements, 1.0, &why)) << why;
  sc.mark_failed(ElementKey::ncp(1));
  EXPECT_FALSE(sc.commit_external("race", &why));
  EXPECT_TRUE(sc.release_external("race"));
  sc.mark_recovered(ElementKey::ncp(1));
  EXPECT_DOUBLE_EQ(sc.gr_residual_capacities().ncp(1)[0], 10.0);
  EXPECT_TRUE(check::check_scheduler_state(sc, {}).ok());
}

// ---------------------------------------------------------------------------
// FederatedService: routing and the two-phase happy path

TEST(Federation, LocalArrivalsRouteToTheirHomeShard) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  // a0 -> a1 pins entirely inside region r0: no cross-shard machinery.
  const ServiceResult got =
      client.submit(make_app("local", QoeSpec::guaranteed_rate(1.0, 0.0), 0, 1));
  ASSERT_EQ(got.status, ServiceResult::Status::kAdmitted) << got.reason;
  EXPECT_DOUBLE_EQ(got.rate, 1.0);

  EXPECT_TRUE(fed.cross_apps().empty());
  const service::ServiceStats stats = fed.stats();
  EXPECT_EQ(stats.submits, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(counter(stats, "federation.local.routed"), 1.0);
  EXPECT_EQ(counter(stats, "federation.cross.submits"), 0.0);

  // The shard's own admission pipeline placed it.
  bool found = false;
  fed.shard(0).inspect([&](const Scheduler& sc) {
    for (const PlacedApp& p : sc.placed())
      if (p.app.name == "local") found = true;
  });
  EXPECT_TRUE(found);
  const auto snap = fed.snapshot();
  EXPECT_NE(snap->find("local"), nullptr);
  expect_conserved(fed);

  EXPECT_EQ(client.remove("local").status, ServiceResult::Status::kRemoved);
  EXPECT_EQ(client.remove("local").status, ServiceResult::Status::kNotFound);
  expect_conserved(fed);
}

TEST(Federation, CrossShardAdmissionReservesOnEveryTouchedShard) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  // a0 (shard 0) -> b1 (shard 1): the sink CT carries real CPU, so the
  // committed load must land on both shards plus the boundary link.
  const ServiceResult got = client.submit(
      make_app("cross", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  ASSERT_EQ(got.status, ServiceResult::Status::kAdmitted) << got.reason;
  EXPECT_NEAR(got.rate, 0.5, 1e-9);
  EXPECT_GE(got.paths, 1u);
  // Cross results carry the wire's request-tracing contract (the
  // federation stamps it — no SchedulerService queue is involved).
  EXPECT_NE(got.timeline.trace_id, 0u);
  EXPECT_GT(got.timeline.apply_us, 0.0);
  EXPECT_GT(got.latency_us, 0.0);

  const auto cross = fed.cross_apps();
  ASSERT_EQ(cross.size(), 1u);
  const federation::CrossApp& ca = cross.at("cross");
  EXPECT_EQ(ca.shards, (std::vector<std::size_t>{0, 1}));
  EXPECT_NEAR(ca.total_rate, 0.5, 1e-9);
  EXPECT_NEAR(ca.load.ncp_load(3)[0], 0.5, 1e-9);  // sink: 0.5 x 1 cpu

  // Both shards hold a committed reservation named after the app.
  for (std::size_t s = 0; s < 2; ++s) {
    bool committed = false;
    fed.shard(s).inspect([&](const Scheduler& sc) {
      const auto& ext = sc.external_reservations();
      committed = ext.count("cross") > 0 && ext.at("cross").committed;
    });
    EXPECT_TRUE(committed) << "shard " << s;
  }
  // The planning residual charged the committed load.
  EXPECT_NEAR(fed.plan_residual().ncp(3)[0], 2.0 - 0.5, 1e-9);
  EXPECT_EQ(counter(fed.stats(), "federation.cross.admitted"), 1.0);
  expect_conserved(fed);

  // Removal releases every hold and refunds the planning residual.
  EXPECT_EQ(client.remove("cross").status, ServiceResult::Status::kRemoved);
  EXPECT_TRUE(fed.cross_apps().empty());
  EXPECT_NEAR(fed.plan_residual().ncp(3)[0], 2.0, 1e-9);
  for (std::size_t s = 0; s < 2; ++s) {
    bool empty = false;
    fed.shard(s).inspect([&](const Scheduler& sc) {
      empty = sc.external_reservations().empty();
    });
    EXPECT_TRUE(empty) << "shard " << s;
  }
  expect_conserved(fed);
}

TEST(Federation, CrossShardBestEffortGetsAFixedFractionHold) {
  FederationOptions opt;
  opt.shards = 2;
  opt.be_rate_fraction = 0.25;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  const ServiceResult got =
      client.submit(make_app("be_cross", QoeSpec::best_effort(1.0), 0, 3));
  ASSERT_EQ(got.status, ServiceResult::Status::kAdmitted) << got.reason;
  EXPECT_GT(got.rate, 0.0);
  // Each committed path holds a fixed fraction of its standalone
  // bottleneck (10 cpu / 4 per unit = 2.5), never the whole path.
  ASSERT_GE(got.paths, 1u);
  EXPECT_LE(got.rate,
            static_cast<double>(got.paths) * 0.25 * 10.0 / 4.0 + 1e-9);
  expect_conserved(fed);
}

TEST(Federation, DuplicateNamesAreRejectedAcrossShards) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  ASSERT_EQ(
      client.submit(make_app("dup", QoeSpec::best_effort(1.0), 0, 1)).status,
      ServiceResult::Status::kAdmitted);
  // Same name arriving as a cross-shard app must bounce at the router.
  const ServiceResult again =
      client.submit(make_app("dup", QoeSpec::best_effort(1.0), 0, 3));
  EXPECT_EQ(again.status, ServiceResult::Status::kRejected);
  expect_conserved(fed);
}

// ---------------------------------------------------------------------------
// Two-phase edge cases — every abort must leave zero residue

TEST(Federation, ShardRefusalAtReserveAbortsWithoutResidue) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  // Fill b1 with a shard-LOCAL GR app: invisible to the federation's
  // optimistic planning residual, so the cross plan passes and only the
  // authoritative shard reserve can say no.
  ASSERT_EQ(client
                .submit(make_app("filler", QoeSpec::guaranteed_rate(1.0, 0.0),
                                 2, 3, 1.0, 2.0))
                .status,
            ServiceResult::Status::kAdmitted);
  EXPECT_NEAR(fed.plan_residual().ncp(3)[0], 2.0, 1e-9);  // optimistic

  const ServiceResult got = client.submit(
      make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  EXPECT_EQ(got.status, ServiceResult::Status::kRejected) << got.reason;
  EXPECT_EQ(
      counter(fed.stats(), "federation.cross.aborted_reserve"),
      1.0);
  EXPECT_TRUE(fed.cross_apps().empty());
  EXPECT_NEAR(fed.plan_residual().ncp(3)[0], 2.0, 1e-9);  // untouched
  for (std::size_t s = 0; s < 2; ++s) {
    bool empty = false;
    fed.shard(s).inspect([&](const Scheduler& sc) {
      empty = sc.external_reservations().empty();
    });
    EXPECT_TRUE(empty) << "leaked hold on shard " << s;
  }
  expect_conserved(fed);
}

TEST(Federation, AbortBetweenPhasesReleasesEveryHold) {
  HookedFed h = make_hooked_fed(make_two_region_net());
  service::LocalClient client(*h.fed);

  *h.hook = [](const std::string&) {
    throw std::runtime_error("operator abort between phases");
  };
  const ServiceResult got = client.submit(
      make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  EXPECT_EQ(got.status, ServiceResult::Status::kRejected);
  EXPECT_EQ(
      counter(h.fed->stats(), "federation.cross.aborted_reserve"),
      1.0);
  EXPECT_TRUE(h.fed->cross_apps().empty());
  expect_conserved(*h.fed);

  // Holds were fully released: the identical resubmit now succeeds.
  *h.hook = nullptr;
  EXPECT_EQ(client
                .submit(make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  expect_conserved(*h.fed);
}

TEST(Federation, DuplicateCommitAbortsAndReleasesEverywhere) {
  HookedFed h = make_hooked_fed(make_two_region_net());
  service::LocalClient client(*h.fed);

  // Between the phases, commit shard 1's hold out-of-band: the protocol's
  // own commit then sees a double commit and must abort globally.
  *h.hook = [&h](const std::string& name) {
    h.fed->shard(1)
        .apply([name](Scheduler& sc) { sc.commit_external(name); })
        .get();
  };
  const ServiceResult got = client.submit(
      make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  EXPECT_EQ(got.status, ServiceResult::Status::kRejected);
  EXPECT_EQ(
      counter(h.fed->stats(), "federation.cross.aborted_commit"),
      1.0);
  EXPECT_TRUE(h.fed->cross_apps().empty());
  // The abort released even the hold that HAD committed on shard 0.
  for (std::size_t s = 0; s < 2; ++s) {
    bool empty = false;
    h.fed->shard(s).inspect([&](const Scheduler& sc) {
      empty = sc.external_reservations().empty();
    });
    EXPECT_TRUE(empty) << "leaked hold on shard " << s;
  }
  expect_conserved(*h.fed);

  *h.hook = nullptr;
  EXPECT_EQ(client
                .submit(make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  expect_conserved(*h.fed);
}

TEST(Federation, ChurnRacingAPendingReservationAborts) {
  HookedFed h = make_hooked_fed(make_two_region_net());
  service::LocalClient client(*h.fed);

  // The sink NCP fails after every shard reserved but before any commit:
  // shard 1's commit refuses (touched element failed) and the admission
  // aborts leak-free.
  *h.hook = [&h](const std::string&) {
    h.fed->mark_failed(ElementKey::ncp(3));
  };
  const ServiceResult got = client.submit(
      make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  EXPECT_EQ(got.status, ServiceResult::Status::kRejected);
  EXPECT_EQ(
      counter(h.fed->stats(), "federation.cross.aborted_commit"),
      1.0);
  EXPECT_TRUE(h.fed->cross_apps().empty());
  EXPECT_TRUE(h.fed->failed_elements().contains(ElementKey::ncp(3)));
  EXPECT_NEAR(h.fed->plan_residual().ncp(3)[0], 0.0, 1e-9);  // dead
  expect_conserved(*h.fed);

  // Recover + repair, then the same app admits cleanly.
  *h.hook = nullptr;
  h.fed->mark_recovered(ElementKey::ncp(3));
  h.fed->repair(ElementKey::ncp(3));
  EXPECT_EQ(client
                .submit(make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  expect_conserved(*h.fed);
}

TEST(Federation, BoundaryLinkChurnIsFederationOwned) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  fed.mark_failed(ElementKey::link(1));  // "ab", owned by no shard
  EXPECT_TRUE(fed.failed_elements().contains(ElementKey::link(1)));
  EXPECT_NEAR(fed.plan_residual().link(1), 0.0, 1e-9);
  // No shard scheduler saw the failure (the link is in neither shard).
  for (std::size_t s = 0; s < 2; ++s) {
    bool clean = false;
    fed.shard(s).inspect([&](const Scheduler& sc) {
      clean = sc.failed_elements().empty();
    });
    EXPECT_TRUE(clean) << "shard " << s;
  }

  // Every cross-shard route needs "ab": admission must refuse.
  const ServiceResult down = client.submit(
      make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0, 3, 4.0, 1.0));
  EXPECT_EQ(down.status, ServiceResult::Status::kRejected);
  expect_conserved(fed);

  fed.mark_recovered(ElementKey::link(1));
  fed.repair(ElementKey::link(1));  // no-op for boundary links
  EXPECT_EQ(client
                .submit(make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  expect_conserved(fed);
}

// ---------------------------------------------------------------------------
// Facade: snapshot, stats, exposition, wire protocol

TEST(Federation, SnapshotAndStatsAggregateAcrossShards) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  ASSERT_EQ(client.submit(make_app("loc", QoeSpec::best_effort(1.0), 0, 1))
                .status,
            ServiceResult::Status::kAdmitted);
  ASSERT_EQ(client
                .submit(make_app("cx", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  fed.drain();

  const auto snap = fed.snapshot();
  EXPECT_EQ(snap->apps.size(), 2u);
  EXPECT_NE(snap->find("loc"), nullptr);
  EXPECT_NE(snap->find("cx"), nullptr);
  EXPECT_NEAR(snap->total_gr_rate, 0.5, 1e-9);
  EXPECT_GT(snap->version, 0u);

  const service::ServiceStats stats = fed.stats();
  EXPECT_EQ(stats.submits, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 0u);

  const std::string prom = fed.prometheus_text();
  EXPECT_NE(prom.find("federation"), std::string::npos);

  const auto health = fed.health_fields();
  EXPECT_FALSE(health.empty());
}

TEST(Federation, EventServerSpeaksTheUnmodifiedWireProtocol) {
  FederationOptions opt;
  opt.shards = 2;
  FederatedService fed(make_two_region_net(), opt);
  service::EventServer server(fed);  // port 0: ephemeral
  server.start();
  ASSERT_GT(server.port(), 0);

  for (const service::Codec codec :
       {service::Codec::kJson, service::Codec::kBinary}) {
    service::TcpClient client("127.0.0.1", server.port(), codec);
    // A cross-shard app over the stock wire protocol, both codecs.
    const std::string name =
        codec == service::Codec::kJson ? "wire_json" : "wire_bin";
    const std::string block = workload::write_app_text(
        make_app(name, QoeSpec::guaranteed_rate(0.25, 0.0), 0, 3, 4.0, 1.0),
        fed.network());
    EXPECT_EQ(client.submit_app_text(block).at("status"), "admitted")
        << block;
    EXPECT_EQ(client.query(name).at("status"), "ok");
    EXPECT_EQ(client.remove(name).at("status"), "removed");
  }

  server.stop();
  expect_conserved(fed);
}

TEST(Federation, SingleShardDegeneratesToOneScheduler) {
  FederationOptions opt;
  opt.shards = 1;
  FederatedService fed(make_two_region_net(), opt);
  service::LocalClient client(fed);

  // With one shard everything is shard-local, boundary set empty.
  EXPECT_TRUE(fed.plan().boundary_links.empty());
  EXPECT_EQ(client
                .submit(make_app("app", QoeSpec::guaranteed_rate(0.5, 0.0), 0,
                                 3, 4.0, 1.0))
                .status,
            ServiceResult::Status::kAdmitted);
  EXPECT_TRUE(fed.cross_apps().empty());
  expect_conserved(fed);
}

}  // namespace
}  // namespace sparcle
