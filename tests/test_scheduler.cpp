#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "baselines/greedy_baselines.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

/// Source and destination sites joined by two disjoint relays:
///   src - r1 - dst   and   src - r2 - dst.
/// Relays fail with probability `relay_pf`; everything else is reliable.
Network make_two_relay_net(double relay_pf = 0.0, double relay_cap = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(relay_cap), relay_pf);
  net.add_ncp("r2", ResourceVector::scalar(relay_cap), relay_pf);
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

/// source -> mid (5 cpu units) -> sink, 1-bit transports.
std::shared_ptr<const TaskGraph> make_relay_app_graph() {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  return g;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  app.name = name;
  app.graph = make_relay_app_graph();
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

TEST(Scheduler, AdmitsSingleBestEffortAppAtFullRate) {
  Scheduler sched(make_two_relay_net());
  const AdmissionResult r = sched.submit(make_app("a", QoeSpec::best_effort(1.0)));
  ASSERT_TRUE(r.admitted) << r.reason;
  EXPECT_EQ(r.path_count, 1u);
  // Relay cpu 10 / 5 = 2 units/s; the PF solve should hand it all over.
  EXPECT_NEAR(r.rate, 2.0, 1e-3);
  EXPECT_EQ(sched.placed().size(), 1u);
}

TEST(Scheduler, EqualPriorityAppsLandOnDisjointRelays) {
  Scheduler sched(make_two_relay_net());
  const auto r1 = sched.submit(make_app("a", QoeSpec::best_effort(1.0)));
  const auto r2 = sched.submit(make_app("b", QoeSpec::best_effort(1.0)));
  ASSERT_TRUE(r1.admitted);
  ASSERT_TRUE(r2.admitted);
  // Prediction steers the second app to the free relay: both get ~2.
  EXPECT_NEAR(sched.placed()[0].allocated_rate, 2.0, 1e-2);
  EXPECT_NEAR(sched.placed()[1].allocated_rate, 2.0, 1e-2);
}

TEST(Scheduler, PriorityShapesSharedAllocation) {
  // A single relay both apps must share; priorities 2:1.
  SchedulerOptions opt;
  Network net2(ResourceSchema::cpu_only());
  net2.add_ncp("src", ResourceVector::scalar(1.0));
  net2.add_ncp("r1", ResourceVector::scalar(10.0));
  net2.add_ncp("dst", ResourceVector::scalar(1.0));
  net2.add_link("s1", 0, 1, 1000.0);
  net2.add_link("1d", 1, 2, 1000.0);
  Scheduler sched(std::move(net2), opt);

  Application a = make_app("a", QoeSpec::best_effort(2.0));
  a.pinned = {{0, 0}, {2, 2}};
  Application b = make_app("b", QoeSpec::best_effort(1.0));
  b.pinned = {{0, 0}, {2, 2}};
  ASSERT_TRUE(sched.submit(a).admitted);
  ASSERT_TRUE(sched.submit(b).admitted);
  const double ra = sched.placed()[0].allocated_rate;
  const double rb = sched.placed()[1].allocated_rate;
  EXPECT_NEAR(ra / rb, 2.0, 0.05);
  EXPECT_NEAR(ra + rb, 2.0, 1e-2);  // relay cpu 10 / 5
}

TEST(Scheduler, BeAvailabilityRequirementAddsSecondPath) {
  // Relays fail 10% of the time; one path gives 0.9, two give 0.99.
  Scheduler sched(make_two_relay_net(0.1));
  const auto r =
      sched.submit(make_app("a", QoeSpec::best_effort(1.0, 0.95)));
  ASSERT_TRUE(r.admitted) << r.reason;
  EXPECT_EQ(r.path_count, 2u);
  EXPECT_NEAR(r.availability, 0.99, 1e-9);
}

TEST(Scheduler, BeRejectedWhenAvailabilityUnreachable) {
  Scheduler sched(make_two_relay_net(0.1));
  const auto r =
      sched.submit(make_app("a", QoeSpec::best_effort(1.0, 0.999)));
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(sched.placed().empty());  // no state leak
}

TEST(Scheduler, RejectionDoesNotDisturbExistingAllocations) {
  Scheduler sched(make_two_relay_net(0.1));
  ASSERT_TRUE(sched.submit(make_app("ok", QoeSpec::best_effort(1.0))).admitted);
  const double before = sched.placed()[0].allocated_rate;
  EXPECT_FALSE(
      sched.submit(make_app("no", QoeSpec::best_effort(1.0, 0.999))).admitted);
  EXPECT_EQ(sched.placed().size(), 1u);
  EXPECT_NEAR(sched.placed()[0].allocated_rate, before, 1e-6);
}

TEST(Scheduler, GrReservesResources) {
  Scheduler sched(make_two_relay_net());
  const auto r = sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)));
  ASSERT_TRUE(r.admitted) << r.reason;
  EXPECT_NEAR(r.rate, 1.5, 1e-9);  // capped at the requested rate
  // 1.5 units/s * 5 cpu = 7.5 reserved on one relay.
  const auto& resid = sched.gr_residual_capacities();
  const double left = resid.ncp(1)[0] + resid.ncp(2)[0];
  EXPECT_NEAR(left, 20.0 - 7.5, 1e-9);
}

TEST(Scheduler, GrRejectedWhenRateUnreachable) {
  Scheduler sched(make_two_relay_net());
  // Two relays can sustain 4 units/s total; 5 is unreachable.
  const auto r = sched.submit(make_app("gr", QoeSpec::guaranteed_rate(5.0, 0.0)));
  EXPECT_FALSE(r.admitted);
  EXPECT_TRUE(sched.placed().empty());
  // Nothing reserved.
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(1)[0], 10.0);
}

TEST(Scheduler, GrAggregatesPathsToReachRate) {
  Scheduler sched(make_two_relay_net());
  // 3 units/s needs both relays (2 each, capped to... path1 = 2, path2 = 2).
  const auto r = sched.submit(make_app("gr", QoeSpec::guaranteed_rate(3.0, 0.0)));
  ASSERT_TRUE(r.admitted) << r.reason;
  EXPECT_EQ(r.path_count, 2u);
  EXPECT_GE(r.rate, 3.0);
  EXPECT_NEAR(sched.total_gr_rate(), r.rate, 1e-12);
}

TEST(Scheduler, GrMinRateAvailabilityNeedsRedundantPaths) {
  // Relays fail 10%; request 1.5 units/s with 0.97 min-rate availability.
  // One path: P = 0.9.  Two paths (each capped at 1.5): either path alone
  // qualifies -> P(at least one up) = 0.99 >= 0.97.
  Scheduler sched(make_two_relay_net(0.1));
  const auto r =
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.97)));
  ASSERT_TRUE(r.admitted) << r.reason;
  EXPECT_EQ(r.path_count, 2u);
  EXPECT_NEAR(r.availability, 0.99, 1e-9);
}

TEST(Scheduler, GrStarvesLaterBestEffort) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(3.8, 0.0)))
          .admitted);
  // 3.8 * 5 = 19 of 20 relay cpu reserved; BE sees the crumbs.
  const auto r = sched.submit(make_app("be", QoeSpec::best_effort(1.0)));
  ASSERT_TRUE(r.admitted);
  EXPECT_LE(r.rate, 0.25);
  EXPECT_GT(r.rate, 0.0);
}

TEST(Scheduler, ArrivalOrderBarelyMattersWithPrediction) {
  auto run = [&](bool high_first) {
    Scheduler sched(make_two_relay_net());
    Application hi = make_app("hi", QoeSpec::best_effort(2.0));
    Application lo = make_app("lo", QoeSpec::best_effort(1.0));
    if (high_first) {
      EXPECT_TRUE(sched.submit(hi).admitted);
      EXPECT_TRUE(sched.submit(lo).admitted);
    } else {
      EXPECT_TRUE(sched.submit(lo).admitted);
      EXPECT_TRUE(sched.submit(hi).admitted);
    }
    double hi_rate = 0, lo_rate = 0;
    for (const auto& pa : sched.placed())
      (pa.app.name == "hi" ? hi_rate : lo_rate) = pa.allocated_rate;
    return std::make_pair(hi_rate, lo_rate);
  };
  const auto [h1, l1] = run(true);
  const auto [h2, l2] = run(false);
  EXPECT_NEAR(h1, h2, 0.05);
  EXPECT_NEAR(l1, l2, 0.05);
}

TEST(Scheduler, WorksWithBaselineAssigner) {
  Scheduler sched(make_two_relay_net(),
                  std::make_unique<GreedySortedAssigner>());
  const auto r = sched.submit(make_app("a", QoeSpec::best_effort(1.0)));
  EXPECT_TRUE(r.admitted) << r.reason;
}

TEST(Scheduler, ValidatesApplications) {
  Scheduler sched(make_two_relay_net());
  Application bad = make_app("bad", QoeSpec::best_effort(1.0));
  bad.pinned.erase(0);  // source not pinned
  EXPECT_THROW(sched.submit(bad), std::invalid_argument);

  Application neg = make_app("neg", QoeSpec::best_effort(-1.0));
  EXPECT_THROW(sched.submit(neg), std::invalid_argument);
}

TEST(Scheduler, BeUtilityReflectsAllocations) {
  Scheduler sched(make_two_relay_net());
  EXPECT_DOUBLE_EQ(sched.be_utility(), 0.0);  // no BE apps yet
  ASSERT_TRUE(sched.submit(make_app("a", QoeSpec::best_effort(1.0))).admitted);
  ASSERT_TRUE(sched.submit(make_app("b", QoeSpec::best_effort(1.0))).admitted);
  // Both at ~2.0: utility ~ 2 log 2.
  EXPECT_NEAR(sched.be_utility(), 2.0 * std::log(2.0), 0.05);
}

TEST(Scheduler, RejectsBadOptions) {
  SchedulerOptions opt;
  opt.max_paths = 0;
  EXPECT_THROW(Scheduler(make_two_relay_net(), opt), std::invalid_argument);
  opt.max_paths = 99;
  EXPECT_THROW(Scheduler(make_two_relay_net(), opt), std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
