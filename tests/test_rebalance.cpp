/// \file test_rebalance.cpp
/// Scheduler::rebalance() — path repair after element failures (the
/// paper's future-work "computing network resource fluctuation").

#include <gtest/gtest.h>

#include "core/scheduler.hpp"

namespace sparcle {
namespace {

Network make_two_relay_net(double r1 = 10.0, double r2 = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(r1));
  net.add_ncp("r2", ResourceVector::scalar(r2));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = g;
  app.name = name;
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

TEST(Rebalance, NoopWithoutFailures) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  const auto report = sched.rebalance();
  EXPECT_TRUE(report.repaired.empty());
  EXPECT_TRUE(report.still_degraded.empty());
  EXPECT_DOUBLE_EQ(sched.total_gr_rate(), 1.0);
}

TEST(Rebalance, RestoresGrGuaranteeOnTheOtherRelay) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  ASSERT_EQ(sched.degraded_gr_apps().size(), 1u);

  const auto report = sched.rebalance();
  ASSERT_EQ(report.repaired.size(), 1u);
  EXPECT_EQ(report.repaired[0], "gr");
  EXPECT_TRUE(report.still_degraded.empty());
  EXPECT_TRUE(sched.degraded_gr_apps().empty());
  // The new path sits on the surviving relay.
  const PlacedApp& pa = sched.placed()[0];
  ASSERT_EQ(pa.paths.size(), 1u);
  EXPECT_NE(pa.paths[0].placement.ct_host(1), host);
  EXPECT_NEAR(pa.allocated_rate, 1.5, 1e-9);
}

TEST(Rebalance, ReleasesDeadReservations) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  (void)sched.rebalance();
  sched.mark_recovered(ElementKey::ncp(host));
  // The recovered relay must be entirely free again (its old reservation
  // was released during the rebalance).
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(host)[0], 10.0);
}

TEST(Rebalance, ReportsUnrepairableGuarantees) {
  // Second relay too small to carry the guarantee.
  Scheduler sched(make_two_relay_net(10.0, 2.0));
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  ASSERT_EQ(sched.placed()[0].paths[0].placement.ct_host(1), 1);
  sched.mark_failed(ElementKey::ncp(1));
  const auto report = sched.rebalance();
  ASSERT_EQ(report.still_degraded.size(), 1u);
  EXPECT_EQ(report.still_degraded[0], "gr");
  EXPECT_FALSE(sched.degraded_gr_apps().empty());
}

TEST(Rebalance, ReplacesBeDeadPaths) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  EXPECT_DOUBLE_EQ(sched.placed()[0].allocated_rate, 0.0);

  const auto report = sched.rebalance();
  ASSERT_EQ(report.repaired.size(), 1u);
  const PlacedApp& pa = sched.placed()[0];
  ASSERT_EQ(pa.paths.size(), 1u);
  EXPECT_NE(pa.paths[0].placement.ct_host(1), host);
  EXPECT_NEAR(pa.allocated_rate, 2.0, 0.02);  // surviving relay 10/5
}

TEST(Rebalance, RepairedAppsSurviveFuzzInvariants) {
  // Fail/repair/recover cycles keep capacity feasibility intact.
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  for (NcpId relay : {1, 2, 1, 2}) {
    sched.mark_failed(ElementKey::ncp(relay));
    (void)sched.rebalance();
    sched.mark_recovered(ElementKey::ncp(relay));
    // Feasibility: total allocation within capacities.
    LoadMap total = LoadMap::zeros(sched.network());
    for (const PlacedApp& pa : sched.placed())
      for (std::size_t k = 0; k < pa.paths.size(); ++k)
        total.add_scaled(pa.paths[k].load, pa.path_rates[k]);
    for (NcpId j = 0; j < 4; ++j)
      ASSERT_LE(total.ncp_load(j)[0],
                sched.network().ncp(j).capacity[0] + 1e-6);
    ASSERT_GE(sched.total_gr_rate() + 1e-9, 1.0);
  }
}

}  // namespace
}  // namespace sparcle
