/// \file test_directed_links.cpp
/// Directed-link support (footnote 2 of the paper: model the network as a
/// directed graph when link bandwidth is not shared across directions).

#include <gtest/gtest.h>

#include "core/sparcle_assigner.hpp"
#include "core/widest_path.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle {
namespace {

/// A ring with directed links: 0 -> 1 -> 2 -> 0.
Network make_directed_ring() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n0", ResourceVector::scalar(100));
  net.add_ncp("n1", ResourceVector::scalar(100));
  net.add_ncp("n2", ResourceVector::scalar(100));
  net.add_directed_link("d01", 0, 1, 10);
  net.add_directed_link("d12", 1, 2, 20);
  net.add_directed_link("d20", 2, 0, 30);
  return net;
}

TEST(DirectedLinks, CanTraverseRespectsDirection) {
  const Network net = make_directed_ring();
  EXPECT_TRUE(net.can_traverse(0, 0));   // 0 -> 1 forward
  EXPECT_FALSE(net.can_traverse(0, 1));  // backwards
  EXPECT_FALSE(net.can_traverse(0, 2));  // not an endpoint
  Network undirected(ResourceSchema::cpu_only());
  undirected.add_ncp("a", ResourceVector::scalar(1));
  undirected.add_ncp("b", ResourceVector::scalar(1));
  undirected.add_link("ab", 0, 1, 1);
  EXPECT_TRUE(undirected.can_traverse(0, 0));
  EXPECT_TRUE(undirected.can_traverse(0, 1));
}

TEST(DirectedLinks, WidestPathGoesTheLongWayAround) {
  const Network net = make_directed_ring();
  // 1 -> 0 cannot use d01 backwards: must go 1 -> 2 -> 0.
  const auto r = widest_path(net, 1, 0,
                             [&](LinkId l) { return net.link(l).bandwidth; });
  ASSERT_TRUE(r.reachable);
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_EQ(r.links[0], 1);  // d12
  EXPECT_EQ(r.links[1], 2);  // d20
  EXPECT_DOUBLE_EQ(r.width, 20.0);
}

TEST(DirectedLinks, ShortestHopPathRespectsDirection) {
  const Network net = make_directed_ring();
  const auto r = shortest_hop_path(net, 2, 1);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.links.size(), 2u);  // 2 -> 0 -> 1
}

TEST(DirectedLinks, UnreachableWhenAllArrowsPointWrong) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(1));
  net.add_ncp("b", ResourceVector::scalar(1));
  net.add_directed_link("ab", 0, 1, 10);
  const auto r = widest_path(net, 1, 0, [](LinkId) { return 1.0; });
  EXPECT_FALSE(r.reachable);
}

TEST(DirectedLinks, PlacementValidationRejectsBackwardsHop) {
  const Network net = make_directed_ring();
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(1));
  g.add_tt("st", 1, s, t);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 1);
  p.place_ct(t, 0);
  p.place_tt(0, {0});  // d01 backwards: 1 -> 0
  std::string err;
  EXPECT_FALSE(p.validate(g, net, &err));
  EXPECT_NE(err.find("against its direction"), std::string::npos);
  // The legal route the long way around passes.
  Placement ok(g);
  ok.place_ct(s, 1);
  ok.place_ct(t, 0);
  ok.place_tt(0, {1, 2});
  EXPECT_TRUE(ok.validate(g, net, &err)) << err;
}

TEST(DirectedLinks, AsymmetricUplinkShapesThePlacement) {
  // Fat uplink to the edge server, thin downlink back: offloading is only
  // worthwhile because the result stream is small.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("device", ResourceVector::scalar(10));
  net.add_ncp("edge", ResourceVector::scalar(1000));
  net.add_directed_link("up", 0, 1, 1000);
  net.add_directed_link("down", 1, 0, 50);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId cam = g.add_ct("cam", ResourceVector::scalar(0));
  const CtId work = g.add_ct("work", ResourceVector::scalar(100));
  const CtId out = g.add_ct("out", ResourceVector::scalar(0));
  g.add_tt("frames", 100, cam, work);
  g.add_tt("result", 10, work, out);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{cam, 0}, {out, 0}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.ct_host(work), 1);
  // frames on the uplink (1000/100 = 10), result on the downlink
  // (50/10 = 5), edge cpu 1000/100 = 10: bottleneck is the downlink.
  EXPECT_DOUBLE_EQ(r.rate, 5.0);
}

TEST(DirectedLinks, SimulatorRunsDirectedRoutes) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(100));
  net.add_ncp("b", ResourceVector::scalar(100));
  net.add_directed_link("up", 0, 1, 10);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(1));
  g.add_tt("st", 5, s, t);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(t, 1);
  p.place_tt(0, {0});
  sim::StreamSimulator sim(net);
  sim.add_stream(g, p, 1.0);
  const auto rep = sim.run(200, 50);
  EXPECT_NEAR(rep.streams[0].throughput, 1.0, 0.05);
}

TEST(DirectedLinks, ScenarioFileRoundTrip) {
  const std::string text = R"(
ncp a 10
ncp b 10
dlink up a b 100
link both a b 50
app x be 1
  ct s 0
  ct t 1
  tt st 1 s t
  pin s a
  pin t b
end
)";
  const auto sf = workload::parse_scenario_text(text);
  EXPECT_TRUE(sf.net.link(0).directed);
  EXPECT_FALSE(sf.net.link(1).directed);
  const auto again =
      workload::parse_scenario_text(workload::write_scenario(sf));
  EXPECT_TRUE(again.net.link(0).directed);
  EXPECT_FALSE(again.net.link(1).directed);
}

}  // namespace
}  // namespace sparcle
