#include "core/provisioning.hpp"

#include <gtest/gtest.h>

#include "core/availability.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"

namespace sparcle {
namespace {

/// Two relays between src and dst; relay 1 is bigger, so the residual-only
/// loop keeps going back to it while the diversity mode switches away.
struct Fixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  std::map<CtId, NcpId> pins;

  explicit Fixture(double r1 = 40.0, double r2 = 10.0, double pf = 0.1) {
    net.add_ncp("src", ResourceVector::scalar(1.0));
    net.add_ncp("r1", ResourceVector::scalar(r1), pf);
    net.add_ncp("r2", ResourceVector::scalar(r2), pf);
    net.add_ncp("dst", ResourceVector::scalar(1.0));
    net.add_link("s1", 0, 1, 1000.0);
    net.add_link("1d", 1, 3, 1000.0);
    net.add_link("s2", 0, 2, 1000.0);
    net.add_link("2d", 2, 3, 1000.0);
    const CtId s = graph.add_ct("source", ResourceVector::scalar(0));
    const CtId m = graph.add_ct("mid", ResourceVector::scalar(5));
    const CtId t = graph.add_ct("sink", ResourceVector::scalar(0));
    graph.add_tt("sm", 1.0, s, m);
    graph.add_tt("mt", 1.0, m, t);
    graph.finalize();
    pins = {{s, 0}, {t, 3}};
  }

  std::vector<PathInfo> run(const ProvisioningOptions& opts) {
    const SparcleAssigner assigner;
    return provision_paths(net, graph, pins, CapacitySnapshot(net), assigner,
                           opts, nullptr);
  }
};

TEST(Provisioning, ResidualOnlyReusesTheBigRelay) {
  Fixture f;  // r1 = 40, r2 = 10: r1 can host several paths
  ProvisioningOptions opts;
  opts.max_paths = 2;
  const auto paths = f.run(opts);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].placement.ct_host(1), 1);
  // After path 1 (rate 8, load 40), r1 is exhausted; the residual loop
  // moves to r2 anyway in this extreme case — use a larger r1 to see the
  // reuse (path1 rate 8 consumes all 40...).  Verify rates instead.
  EXPECT_NEAR(paths[0].standalone_rate, 8.0, 1e-9);
}

TEST(Provisioning, DiversityChoosesDisjointElements) {
  // Make r1 big enough to host two paths comfortably: residual-only will
  // reuse it, diversity will not.
  Fixture f(100.0, 10.0);
  // Cap path rates (as a GR request would) so the first path leaves the
  // big relay mostly free — the residual-only loop then reuses it.
  ProvisioningOptions residual;
  residual.max_paths = 2;
  residual.rate_cap = 2.0;
  const auto same = f.run(residual);
  ASSERT_EQ(same.size(), 2u);
  EXPECT_EQ(same[0].placement.ct_host(1), 1);
  EXPECT_EQ(same[1].placement.ct_host(1), 1);  // reuses the big relay

  ProvisioningOptions diverse;
  diverse.max_paths = 2;
  diverse.rate_cap = 2.0;
  diverse.diversity = PathDiversity::kPenalizeOverlap;
  diverse.overlap_penalty = 0.05;
  const auto split = f.run(diverse);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].placement.ct_host(1), 1);
  EXPECT_EQ(split[1].placement.ct_host(1), 2);  // steered to the other relay
}

TEST(Provisioning, DiversityImprovesAvailability) {
  Fixture f(100.0, 10.0, 0.1);
  auto availability = [&](const std::vector<PathInfo>& paths) {
    std::vector<std::vector<ElementKey>> sets;
    for (const auto& p : paths) sets.push_back(p.elements);
    return availability_any(f.net, sets);
  };
  ProvisioningOptions residual;
  residual.max_paths = 2;
  residual.rate_cap = 2.0;
  ProvisioningOptions diverse = residual;
  diverse.diversity = PathDiversity::kPenalizeOverlap;
  diverse.overlap_penalty = 0.05;
  const double a_residual = availability(f.run(residual));
  const double a_diverse = availability(f.run(diverse));
  // Same-relay paths share fate (0.9); disjoint relays give 0.99.
  EXPECT_NEAR(a_residual, 0.9, 1e-9);
  EXPECT_NEAR(a_diverse, 0.99, 1e-9);
}

TEST(Provisioning, PenaltyDoesNotInflateReportedRates) {
  // The second path's rate must be measured against true residuals, not
  // the penalized search capacities.
  Fixture f(100.0, 10.0);
  ProvisioningOptions diverse;
  diverse.max_paths = 2;
  diverse.diversity = PathDiversity::kPenalizeOverlap;
  diverse.overlap_penalty = 0.05;
  const auto paths = f.run(diverse);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].placement.ct_host(1), 2);
  // Path 2 on r2: 10 cpu / 5 = 2.0 — full capacity, not 5% of it.
  EXPECT_NEAR(paths[1].standalone_rate, 2.0, 1e-9);
}

TEST(Provisioning, StopPredicateEndsTheSearch) {
  Fixture f(100.0, 10.0);
  ProvisioningOptions opts;
  opts.max_paths = 4;
  const SparcleAssigner assigner;
  const auto paths = provision_paths(
      f.net, f.graph, f.pins, CapacitySnapshot(f.net), assigner, opts,
      [](const std::vector<PathInfo>& so_far) { return so_far.size() >= 1; });
  EXPECT_EQ(paths.size(), 1u);
}

TEST(Provisioning, RateCapApplies) {
  Fixture f;
  ProvisioningOptions opts;
  opts.max_paths = 1;
  opts.rate_cap = 3.0;
  const auto paths = f.run(opts);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths[0].standalone_rate, 3.0);
}

TEST(Provisioning, SchedulerDiversityOptionRaisesGrAvailability) {
  // End-to-end with a Guaranteed-Rate request (whose paths are capped at
  // the requested rate, so the big relay is never exhausted): with 10%
  // relay failures and a 0.98 min-rate availability target, the §IV-D
  // residual loop keeps piling correlated paths onto the big relay and
  // rejects, while the diversity mode finds the disjoint relay.
  auto make_app = [] {
    Application app;
    auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
    const CtId s = g->add_ct("source", ResourceVector::scalar(0));
    const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
    const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
    g->add_tt("sm", 1.0, s, m);
    g->add_tt("mt", 1.0, m, t);
    g->finalize();
    app.graph = g;
    app.name = "stream";
    app.qoe = QoeSpec::guaranteed_rate(2.0, 0.98);
    app.pinned = {{s, 0}, {t, 3}};
    return app;
  };
  Fixture f(100.0, 10.0, 0.1);

  SchedulerOptions residual_opts;
  residual_opts.max_paths = 4;
  Scheduler residual_sched(f.net, residual_opts);
  EXPECT_FALSE(residual_sched.submit(make_app()).admitted);

  SchedulerOptions diverse_opts = residual_opts;
  diverse_opts.path_diversity = PathDiversity::kPenalizeOverlap;
  diverse_opts.overlap_penalty = 0.05;
  Scheduler diverse_sched(f.net, diverse_opts);
  const auto r = diverse_sched.submit(make_app());
  EXPECT_TRUE(r.admitted) << r.reason;
  EXPECT_NEAR(r.availability, 0.99, 1e-9);
}

}  // namespace
}  // namespace sparcle
