/// \file test_fairness_warm.cpp
/// Warm-start property sweep: a warm-started PF solve must land on the
/// same allocation a cold solve finds — warm starting is a speed
/// optimization, never a correctness knob.  Exercised at two levels:
///  - solver-level, on randomized problems under randomized small deltas
///    (capacity drift, priority drift, path removal, path addition);
///  - scheduler-level, driving a warm and a cold Scheduler through the
///    same admission / removal / failure / repair sequence and comparing
///    every allocated rate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/invariants.hpp"
#include "core/fairness.hpp"
#include "core/scheduler.hpp"
#include "testutil.hpp"
#include "workload/rng.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

PfProblem random_problem(Rng& rng, std::size_t apps, std::size_t rows) {
  PfProblem p;
  p.capacity.resize(rows);
  for (double& c : p.capacity) c = rng.uniform(10, 100);
  for (std::size_t a = 0; a < apps; ++a) {
    const std::size_t paths = static_cast<std::size_t>(rng.uniform_int(1, 2));
    p.app_priority.push_back(rng.uniform(0.5, 4.0));
    for (std::size_t k = 0; k < paths; ++k) {
      PfProblem::Column col;
      const std::size_t touches =
          static_cast<std::size_t>(rng.uniform_int(1, 3));
      std::vector<char> used(rows, 0);
      for (std::size_t t = 0; t < touches; ++t) {
        const std::size_t row = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(rows) - 1));
        if (used[row]) continue;
        used[row] = 1;
        col.entries.emplace_back(row, rng.uniform(0.5, 5.0));
      }
      p.columns.push_back(std::move(col));
      p.var_app.push_back(a);
    }
  }
  return p;
}

/// Applies one random small delta of the kinds the scheduler produces:
/// capacity drift (repair / partial failure), priority drift (workload
/// change), path removal (app removed), path addition (app admitted).
void perturb(Rng& rng, PfProblem& p, PfWarmStart& warm) {
  switch (rng.uniform_int(0, 3)) {
    case 0:  // capacity drift on a random row
      p.capacity[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(p.capacity.size()) - 1))] *=
          rng.uniform(0.6, 1.4);
      break;
    case 1:  // priority drift on a random app
      p.app_priority[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<int>(p.app_count()) - 1))] *= rng.uniform(0.5, 2.0);
      break;
    case 2: {  // drop the last app (all its variables), if one would remain
      if (p.app_count() < 2) break;
      const std::size_t gone = p.app_count() - 1;
      while (!p.var_app.empty() && p.var_app.back() == gone) {
        p.var_app.pop_back();
        p.columns.pop_back();
        warm.path_rate.pop_back();
      }
      p.app_priority.pop_back();
      break;
    }
    default: {  // admit a new single-path app touching one random row
      PfProblem::Column col;
      col.entries.emplace_back(
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(p.capacity.size()) - 1)),
          rng.uniform(0.5, 5.0));
      p.columns.push_back(std::move(col));
      p.var_app.push_back(p.app_count());
      p.app_priority.push_back(rng.uniform(0.5, 4.0));
      warm.path_rate.push_back(0.0);  // unseen path: cold default kicks in
      break;
    }
  }
}

class FairnessWarm : public ::testing::TestWithParam<int> {};

TEST_P(FairnessWarm, WarmMatchesColdAcrossRandomDeltas) {
  Rng rng(testutil::test_seed() + GetParam());
  PfProblem p = random_problem(rng, 4, 6);
  PfSolution prev = solve_weighted_pf(p);
  ASSERT_TRUE(prev.converged);

  // A chain of small deltas, each warm-started from the previous solve —
  // exactly the scheduler's steady-state pattern.
  for (int step = 0; step < 4; ++step) {
    PfWarmStart warm;
    warm.path_rate = prev.path_rate;
    warm.dual = prev.dual;
    perturb(rng, p, warm);

    PfOptions warm_opt;
    warm_opt.warm = &warm;
    const PfSolution hot = solve_weighted_pf(p, warm_opt);
    const PfSolution cold = solve_weighted_pf(p);
    ASSERT_TRUE(hot.converged) << "seed " << GetParam() << " step " << step;
    ASSERT_TRUE(cold.converged);
    ASSERT_LE(hot.max_violation, 1e-6);

    // Both runs reached the duality-gap tolerance, so their utilities and
    // per-app rates must agree to within that tolerance's slack.
    EXPECT_NEAR(hot.utility, cold.utility, 1e-5)
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(hot.app_rate.size(), cold.app_rate.size());
    for (std::size_t a = 0; a < cold.app_rate.size(); ++a)
      EXPECT_NEAR(hot.app_rate[a], cold.app_rate[a],
                  1e-4 * std::max(1.0, cold.app_rate[a]))
          << "seed " << GetParam() << " step " << step << " app " << a;
    prev = hot;
  }
}

TEST_P(FairnessWarm, WarmAttemptIsAcceptedOnTinyDeltas) {
  // On a pure capacity drift the previous point is nearly optimal: the
  // warm attempt must be kept (no fallback) and spend fewer Newton
  // iterations than the cold μ-schedule.
  Rng rng(testutil::test_seed() + GetParam() + 1000);
  PfProblem p = random_problem(rng, 4, 6);
  const PfSolution prev = solve_weighted_pf(p);
  ASSERT_TRUE(prev.converged);

  p.capacity[0] *= 1.02;
  PfWarmStart warm;
  warm.path_rate = prev.path_rate;
  warm.dual = prev.dual;
  PfOptions warm_opt;
  warm_opt.warm = &warm;
  const PfSolution hot = solve_weighted_pf(p, warm_opt);
  const PfSolution cold = solve_weighted_pf(p);
  ASSERT_TRUE(hot.converged);
  EXPECT_TRUE(hot.warm_started) << "seed " << GetParam();
  EXPECT_FALSE(hot.warm_fallback);
  EXPECT_LT(hot.newton_iters, cold.newton_iters) << "seed " << GetParam();
  EXPECT_NEAR(hot.utility, cold.utility, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FairnessWarm, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Scheduler-level mirror: warm and cold schedulers must stay rate-identical
// through the whole admission / failure / repair / removal lifecycle.

Network make_mesh_net() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(12.0), 0.05);
  net.add_ncp("r2", ResourceVector::scalar(8.0), 0.05);
  net.add_ncp("r3", ResourceVector::scalar(10.0), 0.05);
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("s3", 0, 3, 1000.0);
  net.add_link("1d", 1, 4, 1000.0);
  net.add_link("2d", 2, 4, 1000.0);
  net.add_link("3d", 3, 4, 1000.0);
  return net;
}

Application make_be_app(const std::string& name, double priority) {
  Application app;
  app.name = name;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(4));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = std::move(g);
  app.qoe = QoeSpec::best_effort(priority);
  app.pinned = {{0, 0}, {2, 4}};
  return app;
}

void expect_same_rates(const Scheduler& warm, const Scheduler& cold,
                       const char* where) {
  ASSERT_EQ(warm.placed().size(), cold.placed().size()) << where;
  for (std::size_t i = 0; i < warm.placed().size(); ++i) {
    const PlacedApp& w = warm.placed()[i];
    const PlacedApp& c = cold.placed()[i];
    ASSERT_EQ(w.app.name, c.app.name) << where;
    EXPECT_NEAR(w.allocated_rate, c.allocated_rate,
                1e-5 * std::max(1.0, c.allocated_rate))
        << where << " app " << w.app.name;
  }
}

TEST(SchedulerWarmStart, MirroredLifecycleStaysRateIdentical) {
  Rng rng(testutil::test_seed());
  SchedulerOptions warm_opt;
  warm_opt.pf_warm_start = true;
  SchedulerOptions cold_opt;
  cold_opt.pf_warm_start = false;
  Scheduler warm(make_mesh_net(), warm_opt);
  Scheduler cold(make_mesh_net(), cold_opt);

  // Admissions with randomized priorities.
  for (int i = 0; i < 6; ++i) {
    const double prio = rng.uniform(0.5, 4.0);
    const Application app = make_be_app("app" + std::to_string(i), prio);
    const AdmissionResult rw = warm.submit(app);
    const AdmissionResult rc = cold.submit(app);
    ASSERT_EQ(rw.admitted, rc.admitted) << "app " << i;
    expect_same_rates(warm, cold, "admission");
  }

  // Fail a relay, repair, recover, repair — the localized-repair path.
  const ElementKey relay = ElementKey::ncp(2);
  warm.mark_failed(relay);
  cold.mark_failed(relay);
  expect_same_rates(warm, cold, "failure");
  warm.repair(relay);
  cold.repair(relay);
  expect_same_rates(warm, cold, "repair");
  warm.mark_recovered(relay);
  cold.mark_recovered(relay);
  warm.repair(relay);
  cold.repair(relay);
  expect_same_rates(warm, cold, "recovery");

  // Removal re-solves over the survivors.
  ASSERT_TRUE(warm.remove("app2"));
  ASSERT_TRUE(cold.remove("app2"));
  expect_same_rates(warm, cold, "removal");

  // The warm scheduler actually warm-started, and its final state passes
  // the full invariant suite (including the PF-optimality re-solve).
  EXPECT_GT(warm.pf_solver_stats().warm_hits, 0u);
  EXPECT_EQ(cold.pf_solver_stats().warm_hits, 0u);
  const check::CheckReport report = check::check_scheduler_state(warm);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

}  // namespace
}  // namespace sparcle
