#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

namespace sparcle {
namespace {

struct Fixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  Placement placement;

  Fixture() {
    net.add_ncp("n0", ResourceVector::scalar(100));
    net.add_ncp("n1", ResourceVector::scalar(100));
    net.add_link("l", 0, 1, 1e6);
    const CtId s = graph.add_ct("s", ResourceVector::scalar(0));
    const CtId w = graph.add_ct("w", ResourceVector::scalar(50));
    graph.add_tt("sw", 1e5, s, w);
    graph.finalize();
    placement = Placement(graph);
    placement.place_ct(s, 0);
    placement.place_ct(w, 1);
    placement.place_tt(0, {0});
  }
};

TEST(EnergyModel, CpuPowerScalesWithUtilization) {
  Fixture f;
  DevicePowerProfile prof;
  prof.idle_watts = 1.0;
  prof.cpu_full_load_watts = 10.0;
  prof.tx_watts_per_bps = 0.0;
  prof.rx_watts_per_bps = 0.0;
  const EnergyModel em(f.net, prof);
  // rate 1: n1 utilization = 50/100 = 0.5 -> 1 + 5 = 6 W; n0 hosts the
  // zero-cost source -> idle only, 1 W.  Total 7 W.
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 1.0), 7.0, 1e-12);
  // rate 2: n1 at full load -> 1 + 10; total 12.
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 2.0), 12.0, 1e-12);
}

TEST(EnergyModel, UtilizationIsCappedAtOne) {
  Fixture f;
  DevicePowerProfile prof;
  prof.idle_watts = 0.0;
  prof.cpu_full_load_watts = 10.0;
  prof.tx_watts_per_bps = 0.0;
  prof.rx_watts_per_bps = 0.0;
  const EnergyModel em(f.net, prof);
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 100.0), 10.0, 1e-12);
}

TEST(EnergyModel, RadioPowerScalesWithTraffic) {
  Fixture f;
  DevicePowerProfile prof;
  prof.idle_watts = 0.0;
  prof.cpu_full_load_watts = 0.0;
  prof.tx_watts_per_bps = 2e-6;
  prof.rx_watts_per_bps = 1e-6;
  const EnergyModel em(f.net, prof);
  // rate 1: 1e5 bps over one hop -> (2e-6 + 1e-6) * 1e5 = 0.3 W.
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 1.0), 0.3, 1e-12);
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 2.0), 0.6, 1e-12);
}

TEST(EnergyModel, CoLocationSavesRadioEnergy) {
  Fixture f;
  Placement local(f.graph);
  local.place_ct(0, 0);
  local.place_ct(1, 0);
  local.place_tt(0, {});
  const EnergyModel em(f.net, DevicePowerProfile{});
  const double split = em.total_power(f.graph, f.placement, 1.0);
  const double colocated = em.total_power(f.graph, local, 1.0);
  EXPECT_LT(colocated, split);
}

TEST(EnergyModel, EfficiencyIsRateOverPower) {
  Fixture f;
  const EnergyModel em(f.net, DevicePowerProfile{});
  const double rate = 1.5;
  const double power = em.total_power(f.graph, f.placement, rate);
  EXPECT_NEAR(em.energy_efficiency(f.graph, f.placement, rate),
              rate / power, 1e-12);
  EXPECT_DOUBLE_EQ(em.energy_efficiency(f.graph, f.placement, 0.0), 0.0);
}

TEST(EnergyModel, IdleChargedOnlyToHostingNcps) {
  // Adding an unused NCP must not change the power draw.
  Fixture f;
  Network bigger = f.net;
  bigger.add_ncp("idle", ResourceVector::scalar(100));
  DevicePowerProfile prof;
  prof.idle_watts = 5.0;
  const EnergyModel em_small(f.net, prof);
  const EnergyModel em_big(bigger, prof);
  EXPECT_NEAR(em_small.total_power(f.graph, f.placement, 1.0),
              em_big.total_power(f.graph, f.placement, 1.0), 1e-12);
}

TEST(EnergyModel, PerNcpProfilesAreRespected) {
  Fixture f;
  std::vector<DevicePowerProfile> profs(2);
  profs[0].idle_watts = 1.0;
  profs[1].idle_watts = 100.0;
  profs[0].cpu_full_load_watts = profs[1].cpu_full_load_watts = 0.0;
  profs[0].tx_watts_per_bps = profs[1].tx_watts_per_bps = 0.0;
  profs[0].rx_watts_per_bps = profs[1].rx_watts_per_bps = 0.0;
  const EnergyModel em(f.net, profs);
  EXPECT_NEAR(em.total_power(f.graph, f.placement, 1.0), 101.0, 1e-12);
}

TEST(EnergyModel, RejectsBadInputs) {
  Fixture f;
  EXPECT_THROW(EnergyModel(f.net, std::vector<DevicePowerProfile>(5)),
               std::invalid_argument);
  const EnergyModel em(f.net, DevicePowerProfile{});
  EXPECT_THROW(em.total_power(f.graph, f.placement, -1.0),
               std::invalid_argument);
  Placement incomplete(f.graph);
  EXPECT_THROW(em.total_power(f.graph, incomplete, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
