/// \file test_testbed_sweep.cpp
/// Properties of the Fig. 4/6 testbed across the field-bandwidth range:
/// monotonicity of every algorithm's rate in bandwidth, SPARCLE's
/// domination of the pure strategies, and the capacity planner's
/// consistency with the single-app rate.

#include <gtest/gtest.h>

#include "baselines/cloud.hpp"
#include "baselines/exhaustive.hpp"
#include "core/capacity_planner.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

AssignmentProblem make_problem(const workload::Testbed& tb,
                               const TaskGraph& g) {
  AssignmentProblem p;
  p.net = &tb.net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(tb.net);
  p.pinned = {{g.sources()[0], tb.camera}, {g.sinks()[0], tb.consumer}};
  return p;
}

const std::vector<double>& bandwidths() {
  static const std::vector<double> kBw = {0.25, 0.5, 1.0, 2.0,  4.0,
                                          8.0,  10.0, 16.0, 22.0, 40.0};
  return kBw;
}

TEST(TestbedSweep, SparcleRateIsMonotoneInFieldBandwidth) {
  const auto g = workload::face_detection_app();
  double prev = 0;
  for (double bw : bandwidths()) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *g);
    const double rate = SparcleAssigner().assign(p).rate;
    EXPECT_GE(rate, prev - 1e-9) << "bw " << bw;
    prev = rate;
  }
}

TEST(TestbedSweep, OptimalDominatesEveryAlgorithmEverywhere) {
  const auto g = workload::face_detection_app();
  for (double bw : {0.5, 4.0, 22.0}) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *g);
    const double best = ExhaustiveAssigner().assign(p).rate;
    EXPECT_LE(SparcleAssigner().assign(p).rate, best + 1e-9) << bw;
    EXPECT_LE(CloudAssigner(tb.cloud).assign(p).rate, best + 1e-9) << bw;
  }
}

TEST(TestbedSweep, SparcleWithLocalSearchMatchesOptimalAcrossTheSweep) {
  const auto g = workload::face_detection_app();
  SparcleAssignerOptions opts;
  opts.local_search_rounds = 8;
  for (double bw : bandwidths()) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *g);
    const double refined = SparcleAssigner(opts).assign(p).rate;
    const double best = ExhaustiveAssigner().assign(p).rate;
    EXPECT_GE(refined, 0.95 * best) << "bw " << bw;
  }
}

TEST(TestbedSweep, CloudRateIsCappedByItsCpu) {
  const auto g = workload::face_detection_app();
  const double cpu_cap = 15200.0 / (9880.0 + 12800.0 + 4826.0 + 5658.0);
  for (double bw : bandwidths()) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *g);
    EXPECT_LE(CloudAssigner(tb.cloud).assign(p).rate, cpu_cap + 1e-9);
  }
}

TEST(TestbedSweep, CrossoverFromDispersedToCloudAndBack) {
  // The Fig. 6 narrative as a property: at tiny and at high field
  // bandwidth the all-cloud placement is strictly sub-optimal, while at
  // 10 Mbps it achieves the optimal rate (possibly tied with equivalent
  // placements).
  const auto g = workload::face_detection_app();
  auto cloud_gap = [&](double bw) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = make_problem(tb, *g);
    // Evaluate the literal all-cloud placement through the same router the
    // exhaustive search uses, so the comparison is routing-neutral.
    std::vector<NcpId> hosts(g->ct_count(), tb.cloud);
    hosts[g->sources()[0]] = tb.camera;
    hosts[g->sinks()[0]] = tb.consumer;
    const double all_cloud = evaluate_fixed_hosts(p, hosts).rate;
    const double best = ExhaustiveAssigner().assign(p).rate;
    return best - all_cloud;
  };
  EXPECT_GT(cloud_gap(0.5), 0.01);
  EXPECT_NEAR(cloud_gap(10.0), 0.0, 1e-9);
  EXPECT_GT(cloud_gap(22.0), 0.01);
}

TEST(TestbedSweep, PlannerCountGrowsWithBandwidth) {
  const auto g = workload::face_detection_app();
  std::size_t prev = 0;
  for (double bw : {0.5, 2.0, 10.0}) {
    const auto tb = workload::testbed_network(bw);
    Application cam;
    cam.name = "cam";
    cam.graph = g;
    cam.qoe = QoeSpec::guaranteed_rate(0.05, 0.0);
    cam.pinned = {{g->sources()[0], tb.camera},
                  {g->sinks()[0], tb.consumer}};
    const PlanningResult plan = plan_capacity(tb.net, {cam}, {}, 32);
    EXPECT_GE(plan.max_copies, prev) << "bw " << bw;
    prev = plan.max_copies;
  }
  EXPECT_GT(prev, 10u);  // 10 Mbps hosts many pipelines
}

}  // namespace
}  // namespace sparcle
