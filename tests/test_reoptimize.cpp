/// \file test_reoptimize.cpp
/// Scheduler::global_reoptimize() — the what-if migration extension that
/// quantifies the cost of the paper's frozen-placement assumption.

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "workload/scenarios.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

Network make_two_relay_net() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(30.0));
  net.add_ncp("r2", ResourceVector::scalar(10.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = g;
  app.name = name;
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

TEST(Reoptimize, NoopWhenNothingToGain) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(sched.submit(make_app("a", QoeSpec::best_effort(1.0)))
                  .admitted);
  const auto r = sched.global_reoptimize();
  EXPECT_FALSE(r.adopted);  // one app already has the best placement
  EXPECT_DOUBLE_EQ(r.new_be_utility, r.old_be_utility);
  EXPECT_EQ(sched.placed().size(), 1u);
}

TEST(Reoptimize, FixesAnUnluckyArrivalOrder) {
  // A big GR app arriving *after* a small one was forced onto the small
  // relay; re-optimizing re-admits the big one first onto the big relay.
  Scheduler sched(make_two_relay_net());
  // Small GR app grabs the big relay first (best γ host).
  ASSERT_TRUE(
      sched.submit(make_app("small", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  ASSERT_EQ(sched.placed()[0].paths[0].placement.ct_host(1), 1);
  // Big BE app now shares what is left.
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  const double before = sched.be_utility();

  const auto r = sched.global_reoptimize();
  // GR-first ordering puts "small" back on r1 but the BE app's allocation
  // can only stay equal or improve; adoption requires strict improvement.
  if (r.adopted) {
    EXPECT_GT(r.new_be_utility, before);
    EXPECT_GE(r.new_gr_rate, 1.0 - 1e-9);
  } else {
    EXPECT_DOUBLE_EQ(sched.be_utility(), before);
  }
  // Either way the invariants hold: the GR guarantee survives.
  EXPECT_GE(sched.total_gr_rate() + 1e-9, 1.0);
}

TEST(Reoptimize, RollbackRestoresStateExactly) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(2.0, 0.0)))
          .admitted);
  ASSERT_TRUE(sched.submit(make_app("be", QoeSpec::best_effort(1.0)))
                  .admitted);
  const double utility = sched.be_utility();
  const double gr = sched.total_gr_rate();
  const double resid1 = sched.gr_residual_capacities().ncp(1)[0];
  // Demand an impossible gain: must roll back.
  const auto r = sched.global_reoptimize(1e9);
  EXPECT_FALSE(r.adopted);
  EXPECT_NEAR(sched.be_utility(), utility, 1e-6);
  EXPECT_DOUBLE_EQ(sched.total_gr_rate(), gr);
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(1)[0], resid1);
  EXPECT_EQ(sched.placed().size(), 2u);
}

TEST(Reoptimize, ReportsMigrationCost) {
  // Construct an order where re-optimization definitely helps: two BE
  // apps landed on the same relay because a GR app blocked the other one
  // and then departed.
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("blocker", QoeSpec::guaranteed_rate(5.9, 0.0)))
          .admitted);  // eats nearly all of r1 (30/5=6 max)
  ASSERT_TRUE(sched.submit(make_app("b1", QoeSpec::best_effort(1.0)))
                  .admitted);
  ASSERT_TRUE(sched.submit(make_app("b2", QoeSpec::best_effort(1.0)))
                  .admitted);
  ASSERT_TRUE(sched.remove("blocker"));
  const double before = sched.be_utility();
  const auto r = sched.global_reoptimize();
  ASSERT_TRUE(r.adopted);
  EXPECT_GT(r.new_be_utility, before + 0.1);
  EXPECT_GE(r.migrated_cts, 1u);
  EXPECT_EQ(sched.placed().size(), 2u);
}

TEST(Reoptimize, RandomScenariosNeverLoseUtilityOrGuarantees) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    workload::ScenarioSpec spec;
    spec.topology = workload::TopologyKind::kStar;
    spec.graph = workload::GraphKind::kLinear;
    spec.bottleneck = workload::BottleneckCase::kBalanced;
    spec.ncps = 6;
    const workload::Scenario sc = workload::make_scenario(spec, rng);
    Scheduler sched(sc.net);
    for (int a = 0; a < 4; ++a) {
      Application app{"app" + std::to_string(a),
                      workload::linear_task_graph(
                          3, rng, workload::TaskRanges{}),
                      rng.bernoulli(0.5)
                          ? QoeSpec::best_effort(
                                static_cast<double>(rng.uniform_int(1, 3)))
                          : QoeSpec::guaranteed_rate(rng.uniform(0.1, 0.4),
                                                     0.0),
                      {}};
      app.pinned = {{app.graph->sources()[0], sc.pinned.begin()->second},
                    {app.graph->sinks()[0], sc.pinned.rbegin()->second}};
      sched.submit(app);
    }
    const double utility = sched.be_utility();
    const double gr = sched.total_gr_rate();
    const std::size_t count = sched.placed().size();
    const auto r = sched.global_reoptimize();
    EXPECT_GE(sched.be_utility(), utility - 1e-6) << "seed " << seed;
    EXPECT_GE(sched.total_gr_rate() + 1e-9, gr) << "seed " << seed;
    EXPECT_EQ(sched.placed().size(), count) << "seed " << seed;
    (void)r;
  }
}

}  // namespace
}  // namespace sparcle
