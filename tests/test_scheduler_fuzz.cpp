/// \file test_scheduler_fuzz.cpp
/// Randomized operation sequences against the Scheduler, checking global
/// invariants after every step:
///   * no element is allocated beyond its capacity (BE rates + GR
///     reservations, accounting for marked failures);
///   * GR allocations equal the sum of their path rates and never change
///     except through remove();
///   * paths crossing failed elements carry zero BE rate;
///   * removing everything restores the full residual capacities.

#include <gtest/gtest.h>

#include "testutil.hpp"

#include <map>
#include <set>

#include "core/scheduler.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

using workload::NetRanges;
using workload::TaskRanges;

/// Verifies that the current allocation fits in the network's capacities.
void check_capacity_feasibility(const Scheduler& sched) {
  const Network& net = sched.network();
  LoadMap total = LoadMap::zeros(net);
  for (const PlacedApp& pa : sched.placed())
    for (std::size_t k = 0; k < pa.paths.size(); ++k)
      total.add_scaled(pa.paths[k].load, pa.path_rates[k]);
  constexpr double kTol = 1e-6;
  for (NcpId j = 0; j < static_cast<NcpId>(net.ncp_count()); ++j)
    for (std::size_t r = 0; r < net.schema().size(); ++r)
      ASSERT_LE(total.ncp_load(j)[r],
                net.ncp(j).capacity[r] * (1 + kTol) + kTol)
          << "NCP " << j << " resource " << r << " over-allocated";
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l)
    ASSERT_LE(total.link_load(l), net.link(l).bandwidth * (1 + kTol) + kTol)
        << "link " << l << " over-allocated";
}

void check_gr_consistency(const Scheduler& sched) {
  for (const PlacedApp& pa : sched.placed()) {
    double sum = 0;
    for (double r : pa.path_rates) sum += r;
    if (pa.app.qoe.cls == QoeClass::kGuaranteedRate) {
      ASSERT_NEAR(pa.allocated_rate, sum, 1e-9);
      ASSERT_GE(pa.allocated_rate + 1e-9, pa.app.qoe.min_rate);
    } else {
      ASSERT_NEAR(pa.allocated_rate, sum, 1e-6);
    }
  }
}

void check_failed_paths_carry_nothing(const Scheduler& sched,
                                      const std::set<ElementKey>& failed) {
  for (const PlacedApp& pa : sched.placed()) {
    if (pa.app.qoe.cls != QoeClass::kBestEffort) continue;
    for (std::size_t k = 0; k < pa.paths.size(); ++k) {
      bool crosses_failed = false;
      for (const ElementKey& e : pa.paths[k].elements)
        if (failed.contains(e)) crosses_failed = true;
      if (crosses_failed) {
        ASSERT_LE(pa.path_rates[k], 1e-9)
            << pa.app.name << " path " << k << " runs over a failed element";
      }
    }
  }
}

class SchedulerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFuzz, InvariantsHoldUnderRandomOperations) {
  Rng rng(testutil::test_seed() + GetParam());
  NetRanges ranges;
  ranges.ncp_min = 20;
  ranges.ncp_max = 80;
  ranges.bw_min = 30;
  ranges.bw_max = 120;
  auto gen = workload::full_network(6, rng, ranges);
  const Network net_copy = gen.net;  // keep original capacities for checks

  Scheduler sched(std::move(gen.net));
  std::set<ElementKey> failed;
  std::vector<std::string> live_apps;
  int next_id = 0;
  const TaskRanges tr;

  for (int step = 0; step < 60; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 4) {
      // Submit a random app (50%).
      Application app;
      app.name = "app" + std::to_string(next_id++);
      const int shape = static_cast<int>(rng.uniform_int(0, 2));
      app.graph = shape == 0
                      ? workload::linear_task_graph(3, rng, tr)
                      : shape == 1
                            ? workload::diamond_task_graph(rng, tr)
                            : workload::random_layered_task_graph(rng, tr, 2,
                                                                  3);
      app.pinned = {{app.graph->sources()[0], gen.source},
                    {app.graph->sinks()[0], gen.sink}};
      app.qoe = rng.bernoulli(0.5)
                    ? QoeSpec::best_effort(
                          static_cast<double>(rng.uniform_int(1, 4)))
                    : QoeSpec::guaranteed_rate(rng.uniform(0.05, 0.6), 0.0);
      const AdmissionResult r = sched.submit(app);
      if (r.admitted) live_apps.push_back(app.name);
    } else if (op <= 6 && !live_apps.empty()) {
      // Remove a random live app (20%).
      const std::size_t idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live_apps.size()) - 1));
      ASSERT_TRUE(sched.remove(live_apps[idx]));
      live_apps.erase(live_apps.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (op == 7 || op == 8) {
      // Fail a random element (20%).
      ElementKey e = rng.bernoulli(0.5)
                         ? ElementKey::ncp(static_cast<NcpId>(
                               rng.uniform_int(0, 5)))
                         : ElementKey::link(static_cast<LinkId>(
                               rng.uniform_int(
                                   0, static_cast<int>(
                                          net_copy.link_count()) -
                                          1)));
      sched.mark_failed(e);
      failed.insert(e);
    } else if (!failed.empty()) {
      // Recover a random failed element (10%).
      auto it = failed.begin();
      std::advance(it, rng.uniform_int(
                           0, static_cast<int>(failed.size()) - 1));
      sched.mark_recovered(*it);
      failed.erase(it);
    }

    check_capacity_feasibility(sched);
    check_gr_consistency(sched);
    check_failed_paths_carry_nothing(sched, failed);
    ASSERT_EQ(sched.placed().size(), live_apps.size());
  }

  // Drain: remove everything and recover all failures; the residual must
  // return to the full capacities.
  for (const std::string& name : live_apps) ASSERT_TRUE(sched.remove(name));
  for (const ElementKey& e : failed) sched.mark_recovered(e);
  const CapacitySnapshot& resid = sched.gr_residual_capacities();
  for (NcpId j = 0; j < static_cast<NcpId>(net_copy.ncp_count()); ++j)
    for (std::size_t r = 0; r < net_copy.schema().size(); ++r)
      EXPECT_NEAR(resid.ncp(j)[r], net_copy.ncp(j).capacity[r], 1e-9);
  for (LinkId l = 0; l < static_cast<LinkId>(net_copy.link_count()); ++l)
    EXPECT_NEAR(resid.link(l), net_copy.link(l).bandwidth, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz, ::testing::Range(1, 13));

TEST(RandomLayeredGraph, ShapeInvariants) {
  for (int seed = 1; seed <= 25; ++seed) {
    Rng rng(testutil::test_seed() + static_cast<std::uint64_t>(seed));
    const auto g = workload::random_layered_task_graph(
        rng, TaskRanges{}, 3, 4, 0.5);
    EXPECT_EQ(g->sources().size(), 1u) << seed;
    EXPECT_EQ(g->sinks().size(), 1u) << seed;
    // Every CT lies on a source-to-sink path: reachable from the source
    // and reaching the sink.
    const CtId src = g->sources()[0];
    const CtId dst = g->sinks()[0];
    for (CtId i = 0; i < static_cast<CtId>(g->ct_count()); ++i) {
      if (i == src || i == dst) continue;
      EXPECT_TRUE(g->reaches(src, i)) << "seed " << seed << " ct " << i;
      EXPECT_TRUE(g->reaches(i, dst)) << "seed " << seed << " ct " << i;
    }
  }
}

TEST(RandomLayeredGraph, RejectsDegenerateParameters) {
  Rng rng(testutil::test_seed() + 1);
  EXPECT_THROW(
      workload::random_layered_task_graph(rng, TaskRanges{}, 0, 3),
      std::invalid_argument);
  EXPECT_THROW(
      workload::random_layered_task_graph(rng, TaskRanges{}, 2, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
