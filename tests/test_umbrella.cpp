/// \file test_umbrella.cpp
/// The umbrella header compiles standalone and exposes the public API.

#include "sparcle.hpp"

#include <gtest/gtest.h>

namespace sparcle {
namespace {

TEST(Umbrella, EndToEndThroughTheSingleHeader) {
  Network net(ResourceSchema::cpu_only());
  const NcpId a = net.add_ncp("a", ResourceVector::scalar(100));
  const NcpId b = net.add_ncp("b", ResourceVector::scalar(200));
  net.add_link("ab", a, b, 1e6);

  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("s", ResourceVector::scalar(0));
  const CtId w = g->add_ct("w", ResourceVector::scalar(10));
  g->add_tt("sw", 100, s, w);
  g->finalize();

  Scheduler sched(net);
  Application app{"x", g, QoeSpec::best_effort(1.0), {{s, a}}};
  // w is a sink with requirements: pin it too per the model contract.
  app.pinned[w] = b;
  const AdmissionResult r = sched.submit(app);
  ASSERT_TRUE(r.admitted);
  EXPECT_NEAR(r.rate, 200.0 / 10.0, 1e-6);
}

}  // namespace
}  // namespace sparcle
