#include "core/sparcle_assigner.hpp"

#include <gtest/gtest.h>

#include "baselines/exhaustive.hpp"
#include "workload/scenarios.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

using workload::BottleneckCase;
using workload::GraphKind;
using workload::Scenario;
using workload::ScenarioSpec;
using workload::TopologyKind;

TEST(SparcleAssigner, OffloadsToTheBigNode) {
  // A weak source node connected to a strong helper: SPARCLE must offload
  // the heavy CT when the link can carry the stream.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("weak", ResourceVector::scalar(10));
  net.add_ncp("strong", ResourceVector::scalar(1000));
  net.add_link("l", 0, 1, 1000);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId heavy = g.add_ct("heavy", ResourceVector::scalar(100));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("st", 10, s, heavy);
  g.add_tt("ht", 1, heavy, t);
  g.finalize();

  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.ct_host(heavy), 1);
  EXPECT_DOUBLE_EQ(r.rate, 10.0);  // strong cpu 1000/100, links 1000/11 > 10
}

TEST(SparcleAssigner, StaysLocalWhenLinksAreTight) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("weak", ResourceVector::scalar(10));
  net.add_ncp("strong", ResourceVector::scalar(1000));
  net.add_link("l", 0, 1, 1);  // nearly no bandwidth
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId heavy = g.add_ct("heavy", ResourceVector::scalar(100));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("st", 10, s, heavy);
  g.add_tt("ht", 1, heavy, t);
  g.finalize();

  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  // Offloading would cap the rate at 1/10; local processing achieves
  // 10/100 = 0.1 == offloaded... strictly local wins via the second TT:
  // offloaded: min(1000/100, 1/10, 1/1) = 0.1 vs local 10/100 = 0.1.
  // Either is optimal here; the rate must be 0.1.
  EXPECT_NEAR(r.rate, 0.1, 1e-12);
}

TEST(SparcleAssigner, ProducesValidPlacementOnScenarios) {
  for (int seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kDiamond;
    spec.bottleneck = BottleneckCase::kBalanced;
    const Scenario sc = workload::make_scenario(spec, rng);
    const AssignmentProblem p = sc.problem();
    const AssignmentResult r = SparcleAssigner().assign(p);
    ASSERT_TRUE(r.feasible) << "seed " << seed << ": " << r.message;
    std::string err;
    EXPECT_TRUE(r.placement.validate(*sc.graph, sc.net, &err)) << err;
    // Pins respected.
    for (const auto& [ct, ncp] : sc.pinned)
      EXPECT_EQ(r.placement.ct_host(ct), ncp);
    // Reported rate equals the recomputed bottleneck rate.
    EXPECT_NEAR(r.rate,
                bottleneck_rate(sc.net, *sc.graph, r.placement, p.capacities),
                1e-12);
  }
}

/// Parameterized optimality check: on small instances SPARCLE should land
/// within a constant factor of the exhaustive optimum, and never above it.
class SparcleVsOptimal
    : public ::testing::TestWithParam<std::tuple<int, BottleneckCase>> {};

TEST_P(SparcleVsOptimal, NeverBeatsAndUsuallyMatchesOptimal) {
  const auto [seed, bn] = GetParam();
  Rng rng(seed);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kLinear;
  spec.graph = GraphKind::kLinear;
  spec.bottleneck = bn;
  spec.ncps = 4;
  spec.middle_cts = 3;
  const Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();

  const AssignmentResult ours = SparcleAssigner().assign(p);
  const AssignmentResult best = ExhaustiveAssigner().assign(p);
  ASSERT_TRUE(best.feasible);
  ASSERT_TRUE(ours.feasible);
  EXPECT_LE(ours.rate, best.rate + 1e-9);
  // Greedy heuristics have occasional bad instances; the paper's claim is
  // about the distribution (checked in SparcleAssigner.NearOptimalOnAverage
  // below), so the per-instance floor is loose.
  EXPECT_GE(ours.rate, 0.3 * best.rate)
      << "SPARCLE fell far below optimal (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparcleVsOptimal,
    ::testing::Combine(::testing::Range(1, 16),
                       ::testing::Values(BottleneckCase::kNcp,
                                         BottleneckCase::kLink,
                                         BottleneckCase::kBalanced)));

TEST(SparcleAssigner, NearOptimalOnAverage) {
  // The Fig. 8 claim in aggregate: across random instances of every
  // bottleneck regime the mean SPARCLE/optimal ratio stays high.
  for (BottleneckCase bn : {BottleneckCase::kNcp, BottleneckCase::kLink,
                            BottleneckCase::kBalanced}) {
    double ratio_sum = 0;
    int n = 0;
    for (int seed = 1; seed <= 25; ++seed) {
      Rng rng(seed + 100);
      ScenarioSpec spec;
      spec.topology = TopologyKind::kLinear;
      spec.graph = GraphKind::kLinear;
      spec.bottleneck = bn;
      spec.ncps = 4;
      spec.middle_cts = 3;
      const Scenario sc = workload::make_scenario(spec, rng);
      const AssignmentProblem p = sc.problem();
      const double best = ExhaustiveAssigner().assign(p).rate;
      if (best <= 0) continue;
      ratio_sum += SparcleAssigner().assign(p).rate / best;
      ++n;
    }
    ASSERT_GT(n, 0);
    EXPECT_GE(ratio_sum / n, 0.75) << to_string(bn);
  }
}

TEST(SparcleAssigner, MonotoneInCapacity) {
  // Doubling every capacity cannot reduce the achieved rate.
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.graph = GraphKind::kDiamond;
    const Scenario sc = workload::make_scenario(spec, rng);
    AssignmentProblem p = sc.problem();
    const double base = SparcleAssigner().assign(p).rate;
    for (NcpId j = 0; j < static_cast<NcpId>(sc.net.ncp_count()); ++j)
      p.capacities.ncp(j) *= 2.0;
    for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
      p.capacities.link(l) *= 2.0;
    const double doubled = SparcleAssigner().assign(p).rate;
    EXPECT_GE(doubled, base - 1e-9) << "seed " << seed;
  }
}

TEST(SparcleAssigner, ScalingAllCapacitiesScalesTheRate) {
  Rng rng(3);
  ScenarioSpec spec;
  spec.graph = GraphKind::kLinear;
  const Scenario sc = workload::make_scenario(spec, rng);
  AssignmentProblem p = sc.problem();
  const AssignmentResult base = SparcleAssigner().assign(p);
  for (NcpId j = 0; j < static_cast<NcpId>(sc.net.ncp_count()); ++j)
    p.capacities.ncp(j) *= 3.0;
  for (LinkId l = 0; l < static_cast<LinkId>(sc.net.link_count()); ++l)
    p.capacities.link(l) *= 3.0;
  const AssignmentResult scaled = SparcleAssigner().assign(p);
  EXPECT_NEAR(scaled.rate, 3.0 * base.rate, 1e-9);
}

TEST(SparcleAssigner, InfeasibleWhenSourcePinnedOffNetwork) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(10));
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId x = g.add_ct("x", ResourceVector::scalar(1));
  g.add_tt("sx", 1, s, x);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 5}};  // no such NCP
  EXPECT_THROW(SparcleAssigner().assign(p), std::invalid_argument);
}

TEST(SparcleAssigner, ZeroCapacityNetworkIsInfeasible) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(0));
  net.add_ncp("b", ResourceVector::scalar(0));
  net.add_link("l", 0, 1, 1);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId x = g.add_ct("x", ResourceVector::scalar(5));
  g.add_tt("sx", 1, s, x);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  EXPECT_FALSE(r.feasible);
}

TEST(SparcleAssigner, DynamicBeatsOrMatchesStaticRankingOnLinkBottleneck) {
  // The ablation of the paper's key idea: over link-bottleneck instances
  // the dynamic re-ranking should on average beat the frozen ranking.
  double dynamic_sum = 0, static_sum = 0;
  for (int seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kDiamond;
    spec.bottleneck = BottleneckCase::kLink;
    const Scenario sc = workload::make_scenario(spec, rng);
    const AssignmentProblem p = sc.problem();
    SparcleAssignerOptions stat;
    stat.dynamic_ranking = false;
    dynamic_sum += SparcleAssigner().assign(p).rate;
    static_sum += SparcleAssigner(stat).assign(p).rate;
  }
  EXPECT_GE(dynamic_sum, 0.99 * static_sum);
}

TEST(SparcleAssigner, HandlesMultiSourceGraphs) {
  Rng rng(5);
  const auto gen = workload::star_network(6, rng, workload::NetRanges{});
  const auto g = workload::object_classification_app();
  AssignmentProblem p;
  p.net = &gen.net;
  p.graph = g.get();
  // Capacities in this random star (~tens) are small against the app's
  // megacycle requirements; scale them up to make the instance feasible.
  CapacitySnapshot cap(gen.net);
  for (NcpId j = 0; j < 6; ++j) cap.ncp(j) *= 1000.0;
  for (LinkId l = 0; l < 5; ++l) cap.link(l) *= 1e6;
  p.capacities = cap;
  p.pinned = {{g->sources()[0], gen.source},
              {g->sources()[1], gen.source2},
              {g->sinks()[0], gen.sink}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible) << r.message;
  std::string err;
  EXPECT_TRUE(r.placement.validate(*g, gen.net, &err)) << err;
}

}  // namespace
}  // namespace sparcle
