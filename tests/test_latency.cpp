#include "core/latency.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

struct Fixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  Placement placement;

  Fixture() {
    net.add_ncp("n0", ResourceVector::scalar(10));
    net.add_ncp("n1", ResourceVector::scalar(20));
    net.add_link("l", 0, 1, 100);
    const CtId s = graph.add_ct("s", ResourceVector::scalar(0));
    const CtId a = graph.add_ct("a", ResourceVector::scalar(5));
    const CtId b = graph.add_ct("b", ResourceVector::scalar(4));
    graph.add_tt("sa", 0, s, a);
    graph.add_tt("ab", 50, a, b);
    graph.finalize();
    placement = Placement(graph);
    placement.place_ct(s, 0);
    placement.place_ct(a, 0);
    placement.place_ct(b, 1);
    placement.place_tt(0, {});
    placement.place_tt(1, {0});
  }
};

TEST(LatencyEstimate, ZeroRateGivesPureServiceTimes) {
  Fixture f;
  const LatencyEstimate e = estimate_latency(f.net, f.graph, f.placement, 0);
  ASSERT_TRUE(e.stable);
  // a: 5/10 = 0.5 s; transfer: 50/100 = 0.5 s; b: 4/20 = 0.2 s.
  EXPECT_DOUBLE_EQ(e.ct_sojourn[1], 0.5);
  EXPECT_DOUBLE_EQ(e.tt_sojourn[1], 0.5);
  EXPECT_DOUBLE_EQ(e.ct_sojourn[2], 0.2);
  EXPECT_DOUBLE_EQ(e.total, 1.2);
}

TEST(LatencyEstimate, SojournsGrowWithRate) {
  Fixture f;
  const LatencyEstimate lo = estimate_latency(f.net, f.graph, f.placement, 0.5);
  const LatencyEstimate hi = estimate_latency(f.net, f.graph, f.placement, 1.5);
  ASSERT_TRUE(lo.stable);
  ASSERT_TRUE(hi.stable);
  EXPECT_GT(hi.total, lo.total);
  EXPECT_GT(lo.total, 1.2);  // above the light-load floor
}

TEST(LatencyEstimate, PsDelayFormula) {
  Fixture f;
  // At rate 1: n0 utilization = 1*5/10 = 0.5 -> sojourn of a = 0.5/(1-0.5).
  const LatencyEstimate e = estimate_latency(f.net, f.graph, f.placement, 1.0);
  ASSERT_TRUE(e.stable);
  EXPECT_DOUBLE_EQ(e.ct_sojourn[1], 1.0);
  // link utilization = 50/100 -> 0.5/(1-0.5) = 1.0.
  EXPECT_DOUBLE_EQ(e.tt_sojourn[1], 1.0);
}

TEST(LatencyEstimate, UnstableBeyondBottleneckRate) {
  Fixture f;
  // Bottleneck: min(10/5, 100/50, 20/4) = 2.0 units/s.
  const LatencyEstimate e = estimate_latency(f.net, f.graph, f.placement, 2.0);
  EXPECT_FALSE(e.stable);
  EXPECT_EQ(e.total, std::numeric_limits<double>::infinity());
}

TEST(LatencyEstimate, ReportsBottleneckElement) {
  Fixture f;
  const LatencyEstimate e = estimate_latency(f.net, f.graph, f.placement, 1.0);
  // Utilizations at rate 1: n0 0.5, link 0.5, n1 0.2 — n0 checked first.
  EXPECT_DOUBLE_EQ(e.bottleneck_utilization, 0.5);
}

TEST(LatencyEstimate, FanOutBranchesRunInParallel) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n", ResourceVector::scalar(10));
  net.add_ncp("m", ResourceVector::scalar(10));
  net.add_link("l", 0, 1, 1000);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(2));  // fast branch
  const CtId b = g.add_ct("b", ResourceVector::scalar(8));  // slow branch
  const CtId j = g.add_ct("j", ResourceVector::scalar(0));
  g.add_tt("sa", 0, s, a);
  g.add_tt("sb", 0, s, b);
  g.add_tt("aj", 0, a, j);
  g.add_tt("bj", 0, b, j);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(a, 0);
  p.place_ct(b, 1);  // separate hosts: truly parallel
  p.place_ct(j, 0);
  for (TtId k = 0; k < 4; ++k) p.place_tt(k, k == 1 || k == 3
                                                 ? std::vector<LinkId>{0}
                                                 : std::vector<LinkId>{});
  const LatencyEstimate e = estimate_latency(net, g, p, 0.0);
  ASSERT_TRUE(e.stable);
  // Critical path is the slow branch: 8/10 = 0.8 s, not 0.2 + 0.8.
  EXPECT_DOUBLE_EQ(e.total, 0.8);
}

TEST(LatencyEstimate, RejectsBadInput) {
  Fixture f;
  EXPECT_THROW(estimate_latency(f.net, f.graph, f.placement, -1),
               std::invalid_argument);
  Placement incomplete(f.graph);
  EXPECT_THROW(estimate_latency(f.net, f.graph, incomplete, 1),
               std::invalid_argument);
}

TEST(LatencyEstimate, MatchesSimulatorAtLightLoad) {
  Fixture f;
  const double rate = 0.1;  // utilizations ~5%
  const LatencyEstimate e =
      estimate_latency(f.net, f.graph, f.placement, rate);
  sim::StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, rate);
  const auto rep = sim.run(3000, 300);
  ASSERT_TRUE(e.stable);
  EXPECT_NEAR(rep.streams[0].mean_latency, e.total, 0.15 * e.total);
}

/// Property: across random scenarios at moderate load the estimate stays
/// within a small factor of the simulated mean latency.
class LatencyVsSim : public ::testing::TestWithParam<int> {};

TEST_P(LatencyVsSim, EstimateTracksSimulation) {
  Rng rng(GetParam());
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kLinear;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  const workload::Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  const double rate = 0.5 * r.rate;  // moderate load

  const LatencyEstimate e =
      estimate_latency(sc.net, *sc.graph, r.placement, rate);
  ASSERT_TRUE(e.stable);
  sim::StreamSimulator sim(sc.net, GetParam());
  sim.add_stream(*sc.graph, r.placement, rate);
  const double horizon = 600.0 / rate;
  const auto rep = sim.run(horizon, horizon / 4);
  const double simulated = rep.streams[0].mean_latency;
  EXPECT_GT(simulated, 0.0);
  // Deterministic arrivals queue less than the PS mean-value form
  // predicts, so the estimate is an upper-ish bound; keep a wide band.
  EXPECT_LT(simulated, 2.5 * e.total) << "seed " << GetParam();
  EXPECT_GT(simulated, 0.25 * e.total) << "seed " << GetParam();
  // Percentile ordering is a free sanity check on the new stats.
  EXPECT_LE(rep.streams[0].p50_latency, rep.streams[0].p95_latency);
  EXPECT_LE(rep.streams[0].p95_latency, rep.streams[0].p99_latency);
  EXPECT_LE(rep.streams[0].p99_latency, rep.streams[0].max_latency);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyVsSim, ::testing::Range(1, 9));

}  // namespace
}  // namespace sparcle
