#include "core/widest_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "workload/rng.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Network make_diamond_net() {
  // 0 -(10)- 1 -(20)- 3   and   0 -(15)- 2 -(5)- 3, plus 1 -(1)- 2.
  Network net(ResourceSchema::cpu_only());
  for (int i = 0; i < 4; ++i)
    net.add_ncp("n" + std::to_string(i), ResourceVector::scalar(1));
  net.add_link("l01", 0, 1, 10);
  net.add_link("l13", 1, 3, 20);
  net.add_link("l02", 0, 2, 15);
  net.add_link("l23", 2, 3, 5);
  net.add_link("l12", 1, 2, 1);
  return net;
}

/// Brute-force widest path by enumerating all simple paths (DFS).
double brute_force_width(const Network& net, NcpId from, NcpId to,
                         const std::function<double(LinkId)>& weight) {
  double best = -1;
  std::vector<char> visited(net.ncp_count(), 0);
  std::function<void(NcpId, double)> dfs = [&](NcpId v, double width) {
    if (v == to) {
      best = std::max(best, width);
      return;
    }
    visited[v] = 1;
    for (LinkId l : net.incident_links(v)) {
      const double w = weight(l);
      if (!(w > 0)) continue;
      const NcpId u = net.other_end(l, v);
      if (visited[u]) continue;
      dfs(u, std::min(width, w));
    }
    visited[v] = 0;
  };
  dfs(from, kInf);
  return best;
}

TEST(WidestPath, PicksTheWiderArm) {
  const Network net = make_diamond_net();
  const auto r = widest_path(net, 0, 3,
                             [&](LinkId l) { return net.link(l).bandwidth; });
  ASSERT_TRUE(r.reachable);
  EXPECT_DOUBLE_EQ(r.width, 10.0);  // via 0-1-3: min(10,20)
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_EQ(r.links[0], 0);
  EXPECT_EQ(r.links[1], 1);
}

TEST(WidestPath, SameEndpointsGiveInfiniteWidth) {
  const Network net = make_diamond_net();
  const auto r = widest_path(net, 2, 2, [](LinkId) { return 1.0; });
  EXPECT_TRUE(r.reachable);
  EXPECT_EQ(r.width, kInf);
  EXPECT_TRUE(r.links.empty());
}

TEST(WidestPath, UnreachableWhenCut) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(1));
  net.add_ncp("b", ResourceVector::scalar(1));
  const auto r = widest_path(net, 0, 1, [](LinkId) { return 1.0; });
  EXPECT_FALSE(r.reachable);
}

TEST(WidestPath, ZeroWeightLinksAreUnusable) {
  const Network net = make_diamond_net();
  // Kill both arms except 0-2-3.
  const auto r = widest_path(net, 0, 3, [&](LinkId l) {
    return (l == 2 || l == 3) ? net.link(l).bandwidth : 0.0;
  });
  ASSERT_TRUE(r.reachable);
  EXPECT_DOUBLE_EQ(r.width, 5.0);
  ASSERT_EQ(r.links.size(), 2u);
}

TEST(WidestPath, ReturnedRouteIsContiguous) {
  const Network net = make_diamond_net();
  const auto r = widest_path(net, 1, 2,
                             [&](LinkId l) { return net.link(l).bandwidth; });
  ASSERT_TRUE(r.reachable);
  NcpId at = 1;
  for (LinkId l : r.links) at = net.other_end(l, at);
  EXPECT_EQ(at, 2);
}

TEST(WidestPath, RouteWidthMatchesReportedWidth) {
  const Network net = make_diamond_net();
  const auto weight = [&](LinkId l) { return net.link(l).bandwidth; };
  const auto r = widest_path(net, 0, 3, weight);
  ASSERT_TRUE(r.reachable);
  double w = kInf;
  for (LinkId l : r.links) w = std::min(w, weight(l));
  EXPECT_DOUBLE_EQ(w, r.width);
}

TEST(WidestPath, OutOfRangeEndpointThrows) {
  const Network net = make_diamond_net();
  EXPECT_THROW(widest_path(net, 0, 9, [](LinkId) { return 1.0; }),
               std::invalid_argument);
}

TEST(BestTtPath, AccountsForExistingLoads) {
  const Network net = make_diamond_net();
  const CapacitySnapshot cap(net);
  LoadMap load = LoadMap::zeros(net);
  // Congest link l01 with 90 bits of existing TTs; probing a 10-bit TT
  // makes arm 0-1-3 width 10/(10+90) = 0.1 while 0-2-3 gives
  // min(15/10, 5/10) = 0.5.
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId a = g.add_ct("a", ResourceVector::scalar(1));
  const CtId b = g.add_ct("b", ResourceVector::scalar(1));
  g.add_tt("big", 90, a, b);
  g.finalize();
  load.add_tt(g, 0, 0);

  const auto r = best_tt_path(net, cap, load, 10.0, 0, 3);
  ASSERT_TRUE(r.reachable);
  EXPECT_DOUBLE_EQ(r.width, 0.5);
  EXPECT_EQ(r.links[0], 2);  // via NCP 2
}

TEST(BestTtPath, ZeroBitTtOnEmptyLinksIsFree) {
  const Network net = make_diamond_net();
  const CapacitySnapshot cap(net);
  const LoadMap load = LoadMap::zeros(net);
  const auto r = best_tt_path(net, cap, load, 0.0, 0, 3);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.width, kInf);
}

/// Property sweep: Dijkstra widest path == brute-force widest path on
/// random star / full topologies.
class WidestPathRandom : public ::testing::TestWithParam<int> {};

TEST_P(WidestPathRandom, MatchesBruteForceOnFullNetworks) {
  Rng rng(GetParam());
  const auto gen = workload::full_network(6, rng, workload::NetRanges{});
  const auto weight = [&](LinkId l) { return gen.net.link(l).bandwidth; };
  for (NcpId from = 0; from < 6; ++from)
    for (NcpId to = 0; to < 6; ++to) {
      if (from == to) continue;
      const auto r = widest_path(gen.net, from, to, weight);
      ASSERT_TRUE(r.reachable);
      EXPECT_NEAR(r.width, brute_force_width(gen.net, from, to, weight),
                  1e-12);
    }
}

TEST_P(WidestPathRandom, MatchesBruteForceOnStarNetworks) {
  Rng rng(GetParam() + 1000);
  const auto gen = workload::star_network(7, rng, workload::NetRanges{});
  const auto weight = [&](LinkId l) { return gen.net.link(l).bandwidth; };
  for (NcpId from = 0; from < 7; ++from)
    for (NcpId to = 0; to < 7; ++to) {
      if (from == to) continue;
      const auto r = widest_path(gen.net, from, to, weight);
      ASSERT_TRUE(r.reachable);
      EXPECT_NEAR(r.width, brute_force_width(gen.net, from, to, weight),
                  1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidestPathRandom,
                         ::testing::Range(1, 21));

TEST(WidestPathWorkspace, ReusableAcrossCallsAndWeightFunctors) {
  const Network net = make_diamond_net();
  WidestPathWorkspace ws;

  // First functor: raw bandwidths.
  const auto bandwidth = [&](LinkId l) { return net.link(l).bandwidth; };
  for (int round = 0; round < 3; ++round) {  // reuse must not leak state
    const auto r = widest_path_buffered(net, 0, 3, bandwidth, ws);
    ASSERT_TRUE(r.reachable);
    EXPECT_DOUBLE_EQ(r.width, 10.0);
    ASSERT_EQ(r.links.size(), 2u);
    EXPECT_EQ(r.links[0], 0);
    EXPECT_EQ(r.links[1], 1);
  }

  // Second functor with a different type and different optimum: inverted
  // weights make the formerly-worst arm the widest one.
  struct Inverted {
    const Network* net;
    double operator()(LinkId l) const {
      return 100.0 - net->link(l).bandwidth;
    }
  };
  const auto inv = widest_path_buffered(net, 0, 3, Inverted{&net}, ws);
  ASSERT_TRUE(inv.reachable);
  EXPECT_DOUBLE_EQ(inv.width, 90.0);  // 0-1-2-3: min(90, 99, 95)
  const auto again = widest_path(net, 0, 3, [&](LinkId l) {
    return 100.0 - net.link(l).bandwidth;
  });
  EXPECT_EQ(inv.links, again.links);

  // Same workspace on a *different, larger* network.
  Network big(ResourceSchema::cpu_only());
  for (int i = 0; i < 12; ++i)
    big.add_ncp("m" + std::to_string(i), ResourceVector::scalar(1));
  for (int i = 0; i + 1 < 12; ++i)
    big.add_link("c" + std::to_string(i), i, i + 1, 7.0);
  const auto chain = widest_path_buffered(
      big, 0, 11, [&](LinkId l) { return big.link(l).bandwidth; }, ws);
  ASSERT_TRUE(chain.reachable);
  EXPECT_DOUBLE_EQ(chain.width, 7.0);
  EXPECT_EQ(chain.links.size(), 11u);
}

TEST(WidestPathWorkspace, WidthProbeHonorsFloorExactly) {
  const Network net = make_diamond_net();
  WidestPathWorkspace ws;
  const auto bandwidth = [&](LinkId l) { return net.link(l).bandwidth; };

  // Floor below the true width: exact answer, not pruned.
  auto r = widest_path_width(net, 0, 3, bandwidth, ws, 5.0);
  EXPECT_TRUE(r.reachable);
  EXPECT_FALSE(r.pruned);
  EXPECT_DOUBLE_EQ(r.width, 10.0);

  // Floor at/above the true width: pruned with an upper bound <= floor.
  r = widest_path_width(net, 0, 3, bandwidth, ws, 10.0);
  EXPECT_FALSE(r.reachable);
  EXPECT_TRUE(r.pruned);
  EXPECT_LE(r.width, 10.0);

  // Unreachable destination is reported as unreachable, never pruned,
  // when the floor is non-positive.
  Network cut(ResourceSchema::cpu_only());
  cut.add_ncp("a", ResourceVector::scalar(1));
  cut.add_ncp("b", ResourceVector::scalar(1));
  r = widest_path_width(cut, 0, 1, [](LinkId) { return 1.0; }, ws, 0.0);
  EXPECT_FALSE(r.reachable);
  EXPECT_FALSE(r.pruned);
}

TEST(ShortestHopPath, SkipsDeadLinks) {
  // A NaN-bandwidth link passes add_link's (<= 0) validation but is
  // unusable under the widest_path rule; shortest_hop_path must honor the
  // same rule instead of routing a TT over the dead link.
  const double dead = std::numeric_limits<double>::quiet_NaN();
  Network net(ResourceSchema::cpu_only());
  for (int i = 0; i < 3; ++i)
    net.add_ncp("n" + std::to_string(i), ResourceVector::scalar(1));
  net.add_link("dead02", 0, 2, dead);  // direct but dead
  net.add_link("l01", 0, 1, 5.0);
  net.add_link("l12", 1, 2, 5.0);

  const auto hop = shortest_hop_path(net, 0, 2);
  ASSERT_TRUE(hop.reachable);
  ASSERT_EQ(hop.links.size(), 2u);  // detour 0-1-2, not the dead link
  EXPECT_EQ(hop.links[0], 1);
  EXPECT_EQ(hop.links[1], 2);
  EXPECT_DOUBLE_EQ(hop.width, 5.0);

  // With only the dead link present the endpoints are disconnected.
  Network only_dead(ResourceSchema::cpu_only());
  only_dead.add_ncp("a", ResourceVector::scalar(1));
  only_dead.add_ncp("b", ResourceVector::scalar(1));
  only_dead.add_link("dead", 0, 1, dead);
  EXPECT_FALSE(shortest_hop_path(only_dead, 0, 1).reachable);
  EXPECT_FALSE(widest_path(only_dead, 0, 1, [&](LinkId l) {
                 return only_dead.link(l).bandwidth;
               }).reachable);
}

}  // namespace
}  // namespace sparcle
