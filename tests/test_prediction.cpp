#include "core/prediction.hpp"

#include <gtest/gtest.h>

namespace sparcle {
namespace {

Network make_pair_net() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(90));
  net.add_ncp("b", ResourceVector::scalar(60));
  net.add_link("l", 0, 1, 30);
  return net;
}

TEST(Prediction, PaperWorkedExample) {
  // App a (priority P) occupies NCP 0; arriving app b with priority 2P
  // should predict 2/3 of NCP 0's capacity (eq. (6) worked example).
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  const std::vector<BePresence> placed = {{1.0, {ElementKey::ncp(0)}}};
  const CapacitySnapshot pred = predict_capacities(base, placed, 2.0);
  EXPECT_NEAR(pred.ncp(0)[0], 90.0 * 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pred.ncp(1)[0], 60.0);  // untouched
  EXPECT_DOUBLE_EQ(pred.link(0), 30.0);
}

TEST(Prediction, EqualPrioritiesHalve) {
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  const std::vector<BePresence> placed = {{1.0, {ElementKey::link(0)}}};
  const CapacitySnapshot pred = predict_capacities(base, placed, 1.0);
  EXPECT_NEAR(pred.link(0), 15.0, 1e-12);
}

TEST(Prediction, MultipleIncumbentsAccumulate) {
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  const std::vector<BePresence> placed = {{1.0, {ElementKey::ncp(0)}},
                                          {2.0, {ElementKey::ncp(0)}}};
  const CapacitySnapshot pred = predict_capacities(base, placed, 1.0);
  EXPECT_NEAR(pred.ncp(0)[0], 90.0 * 1.0 / 4.0, 1e-12);
}

TEST(Prediction, DuplicateElementsOfOneAppCountOnce) {
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  // The same app lists NCP 0 twice (two paths through it).
  const std::vector<BePresence> placed = {
      {1.0, {ElementKey::ncp(0), ElementKey::ncp(0)}}};
  const CapacitySnapshot pred = predict_capacities(base, placed, 1.0);
  EXPECT_NEAR(pred.ncp(0)[0], 45.0, 1e-12);
}

TEST(Prediction, NoIncumbentsMeansFullCapacity) {
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  const CapacitySnapshot pred = predict_capacities(base, {}, 5.0);
  EXPECT_DOUBLE_EQ(pred.ncp(0)[0], 90.0);
  EXPECT_DOUBLE_EQ(pred.link(0), 30.0);
}

TEST(Prediction, AppliesOnTopOfResidualBase) {
  const Network net = make_pair_net();
  CapacitySnapshot base(net);
  base.ncp(0)[0] = 50.0;  // e.g. after a GR reservation
  const std::vector<BePresence> placed = {{1.0, {ElementKey::ncp(0)}}};
  const CapacitySnapshot pred = predict_capacities(base, placed, 1.0);
  EXPECT_NEAR(pred.ncp(0)[0], 25.0, 1e-12);
}

TEST(Prediction, RejectsNonPositivePriorities) {
  const Network net = make_pair_net();
  const CapacitySnapshot base(net);
  EXPECT_THROW(predict_capacities(base, {}, 0.0), std::invalid_argument);
  const std::vector<BePresence> placed = {{-1.0, {ElementKey::ncp(0)}}};
  EXPECT_THROW(predict_capacities(base, placed, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
