#include "model/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

/// source -> a -> b -> sink, plus a parallel arm source -> c -> sink.
TaskGraph make_two_arm_graph() {
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId src = g.add_ct("src", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(10));
  const CtId b = g.add_ct("b", ResourceVector::scalar(20));
  const CtId c = g.add_ct("c", ResourceVector::scalar(30));
  const CtId sink = g.add_ct("sink", ResourceVector::scalar(0));
  g.add_tt("t0", 100, src, a);
  g.add_tt("t1", 50, a, b);
  g.add_tt("t2", 25, b, sink);
  g.add_tt("t3", 70, src, c);
  g.add_tt("t4", 35, c, sink);
  g.finalize();
  return g;
}

TEST(TaskGraph, BuildCountsTasks) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_EQ(g.ct_count(), 5u);
  EXPECT_EQ(g.tt_count(), 5u);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = make_two_arm_graph();
  ASSERT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.ct(g.sources()[0]).name, "src");
  ASSERT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.ct(g.sinks()[0]).name, "sink");
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = make_two_arm_graph();
  const auto& topo = g.topological_order();
  ASSERT_EQ(topo.size(), g.ct_count());
  auto pos = [&](CtId i) {
    return std::find(topo.begin(), topo.end(), i) - topo.begin();
  };
  for (TtId k = 0; k < static_cast<TtId>(g.tt_count()); ++k)
    EXPECT_LT(pos(g.tt(k).src), pos(g.tt(k).dst))
        << "edge " << g.tt(k).name << " violates the order";
}

TEST(TaskGraph, ReachabilityFollowsPaths) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_TRUE(g.reaches(0, 4));   // src -> sink
  EXPECT_TRUE(g.reaches(1, 2));   // a -> b
  EXPECT_FALSE(g.reaches(2, 1));  // not backwards
  EXPECT_FALSE(g.reaches(1, 3));  // a and c are parallel arms
  EXPECT_FALSE(g.reaches(3, 1));
}

TEST(TaskGraph, RelatedIsSymmetric) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_TRUE(g.related(1, 4));
  EXPECT_TRUE(g.related(4, 1));
  EXPECT_FALSE(g.related(1, 3));
}

TEST(TaskGraph, TtsBetweenDirectNeighbours) {
  const TaskGraph g = make_two_arm_graph();
  const auto set = g.tts_between(1, 2);  // a -> b: exactly t1
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(g.tt(set[0]).name, "t1");
}

TEST(TaskGraph, TtsBetweenDistantCtsCoversTheChain) {
  const TaskGraph g = make_two_arm_graph();
  const auto set = g.tts_between(1, 4);  // a .. sink: t1, t2
  ASSERT_EQ(set.size(), 2u);
}

TEST(TaskGraph, TtsBetweenWorksInEitherArgumentOrder) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_EQ(g.tts_between(1, 4).size(), g.tts_between(4, 1).size());
}

TEST(TaskGraph, TtsBetweenSourceAndSinkSpansBothArms) {
  const TaskGraph g = make_two_arm_graph();
  // Every TT lies on some src -> sink path.
  EXPECT_EQ(g.tts_between(0, 4).size(), g.tt_count());
}

TEST(TaskGraph, TtsBetweenUnrelatedIsEmpty) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_TRUE(g.tts_between(1, 3).empty());
}

TEST(TaskGraph, CycleDetectionThrows) {
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId a = g.add_ct("a", ResourceVector::scalar(1));
  const CtId b = g.add_ct("b", ResourceVector::scalar(1));
  g.add_tt("ab", 1, a, b);
  g.add_tt("ba", 1, b, a);
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(TaskGraph, EmptyGraphThrowsOnFinalize) {
  TaskGraph g;
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(TaskGraph, SelfLoopTtThrows) {
  TaskGraph g;
  const CtId a = g.add_ct("a", ResourceVector::scalar(1));
  EXPECT_THROW(g.add_tt("aa", 1, a, a), std::invalid_argument);
}

TEST(TaskGraph, UnknownEndpointThrows) {
  TaskGraph g;
  g.add_ct("a", ResourceVector::scalar(1));
  EXPECT_THROW(g.add_tt("bad", 1, 0, 7), std::invalid_argument);
}

TEST(TaskGraph, NegativeBitsThrows) {
  TaskGraph g;
  const CtId a = g.add_ct("a", ResourceVector::scalar(1));
  const CtId b = g.add_ct("b", ResourceVector::scalar(1));
  EXPECT_THROW(g.add_tt("neg", -1, a, b), std::invalid_argument);
}

TEST(TaskGraph, SchemaMismatchThrows) {
  TaskGraph g(ResourceSchema::cpu_memory());
  EXPECT_THROW(g.add_ct("a", ResourceVector::scalar(1)),
               std::invalid_argument);
}

TEST(TaskGraph, MutationAfterFinalizeThrows) {
  TaskGraph g = make_two_arm_graph();
  EXPECT_THROW(g.add_ct("late", ResourceVector::scalar(1)),
               std::logic_error);
}

TEST(TaskGraph, QueryBeforeFinalizeThrows) {
  TaskGraph g;
  g.add_ct("a", ResourceVector::scalar(1));
  EXPECT_THROW(g.topological_order(), std::logic_error);
  EXPECT_THROW(g.sources(), std::logic_error);
}

TEST(TaskGraph, TotalsAggregateRequirements) {
  const TaskGraph g = make_two_arm_graph();
  EXPECT_DOUBLE_EQ(g.total_ct_requirement()[0], 60.0);
  EXPECT_DOUBLE_EQ(g.total_tt_bits(), 280.0);
}

TEST(FaceDetectionApp, MatchesTableTwo) {
  const auto g = workload::face_detection_app();
  ASSERT_EQ(g->ct_count(), 6u);
  ASSERT_EQ(g->tt_count(), 5u);
  EXPECT_DOUBLE_EQ(g->ct(1).requirement[0], 9880.0);   // resize
  EXPECT_DOUBLE_EQ(g->ct(2).requirement[0], 12800.0);  // denoise
  EXPECT_DOUBLE_EQ(g->ct(3).requirement[0], 4826.0);   // edge detection
  EXPECT_DOUBLE_EQ(g->ct(4).requirement[0], 5658.0);   // face detection
  EXPECT_DOUBLE_EQ(g->tt(0).bits_per_unit, 3.1 * 8e6);  // raw images
  EXPECT_DOUBLE_EQ(g->tt(4).bits_per_unit, 11.0 * 8e3);  // detected faces
  // Chain shape: one source (the camera), one sink (the consumer).
  EXPECT_EQ(g->sources().size(), 1u);
  EXPECT_EQ(g->sinks().size(), 1u);
}

TEST(ObjectClassificationApp, HasTwoCameraSources) {
  const auto g = workload::object_classification_app();
  EXPECT_EQ(g->sources().size(), 2u);
  EXPECT_EQ(g->sinks().size(), 1u);
}

TEST(DiamondTaskGraph, MatchesFigureSevenB) {
  Rng rng(7);
  const auto g = workload::diamond_task_graph(rng, workload::TaskRanges{});
  EXPECT_EQ(g->ct_count(), 8u);
  EXPECT_EQ(g->tt_count(), 14u);
  EXPECT_EQ(g->sources().size(), 1u);
  EXPECT_EQ(g->sinks().size(), 1u);
}

TEST(LinearTaskGraph, HasRequestedMiddleCts) {
  Rng rng(7);
  const auto g = workload::linear_task_graph(4, rng, workload::TaskRanges{});
  EXPECT_EQ(g->ct_count(), 6u);  // source + 4 + sink
  EXPECT_EQ(g->tt_count(), 5u);
}

}  // namespace
}  // namespace sparcle
