/// \file test_api_surface.cpp
/// Coverage for the corners of the public API that the main suites don't
/// reach: option forwarding, alternate resource indices, routing-policy
/// commits, and validation edge cases.

#include <gtest/gtest.h>

#include "sparcle.hpp"
#include "core/greedy_engine.hpp"

namespace sparcle {
namespace {

TEST(ApiSurface, SchedulerForwardsAssignerOptions) {
  // A scheduler configured with local-search rounds should produce at
  // least as much BE rate as the plain greedy on a balanced instance.
  Rng rng(6);
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kDiamond;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  const workload::Scenario sc = workload::make_scenario(spec, rng);
  Application app{"a", sc.graph, QoeSpec::best_effort(1.0), sc.pinned};

  SchedulerOptions plain;
  Scheduler s1(sc.net, plain);
  const double r1 = s1.submit(app).rate;

  SchedulerOptions refined;
  refined.assigner_options.local_search_rounds = 4;
  Scheduler s2(sc.net, refined);
  const double r2 = s2.submit(app).rate;
  EXPECT_GE(r2, r1 - 1e-9);
}

TEST(ApiSurface, EnergyModelHonoursCpuResourceIndex) {
  Network net(ResourceSchema::cpu_memory());
  net.add_ncp("n", ResourceVector{100.0, 50.0});
  TaskGraph g(ResourceSchema::cpu_memory());
  const CtId w = g.add_ct("w", ResourceVector{10.0, 25.0});
  g.finalize();
  Placement p(g);
  p.place_ct(w, 0);
  DevicePowerProfile prof;
  prof.idle_watts = 0;
  prof.cpu_full_load_watts = 10;
  prof.tx_watts_per_bps = prof.rx_watts_per_bps = 0;
  const EnergyModel em(net, prof);
  // Resource 0: utilization 10/100 = 0.1 -> 1 W.
  EXPECT_NEAR(em.total_power(g, p, 1.0, 0), 1.0, 1e-12);
  // Resource 1: utilization 25/50 = 0.5 -> 5 W.
  EXPECT_NEAR(em.total_power(g, p, 1.0, 1), 5.0, 1e-12);
}

TEST(ApiSurface, GreedyEngineShortestHopCommit) {
  // Commit with the shortest-hop policy: the route takes the 2-hop direct
  // line even when a wider 3-hop detour exists.
  Network net(ResourceSchema::cpu_only());
  for (int i = 0; i < 4; ++i)
    net.add_ncp("n" + std::to_string(i), ResourceVector::scalar(100));
  net.add_link("a01", 0, 1, 1.0);    // narrow line
  net.add_link("a12", 1, 2, 1.0);
  net.add_link("b03", 0, 3, 100.0);  // wide parallel line
  net.add_link("b32", 3, 2, 100.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(1));
  g.add_tt("st", 10, s, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 2}};

  GreedyEngine shortest(p, true, GreedyEngine::Routing::kShortestHops);
  shortest.commit_pins();
  AssignmentResult r1 = std::move(shortest).finish();
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(r1.placement.tt_route(0).size(), 2u);
  EXPECT_EQ(r1.placement.tt_route(0)[0], 0);  // via the narrow line

  GreedyEngine widest(p, true, GreedyEngine::Routing::kWidestPath);
  widest.commit_pins();
  AssignmentResult r2 = std::move(widest).finish();
  ASSERT_TRUE(r2.feasible);
  EXPECT_EQ(r2.placement.tt_route(0)[0], 2);  // via the wide detour
  EXPECT_GT(r2.rate, r1.rate);
}

TEST(ApiSurface, PlacementShapeMismatchIsRejected) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n", ResourceVector::scalar(1));
  TaskGraph g1(ResourceSchema::cpu_only());
  g1.add_ct("a", ResourceVector::scalar(1));
  g1.finalize();
  TaskGraph g2(ResourceSchema::cpu_only());
  g2.add_ct("a", ResourceVector::scalar(1));
  g2.add_ct("b", ResourceVector::scalar(1));
  g2.add_tt("ab", 1, 0, 1);
  g2.finalize();
  Placement p(g1);
  p.place_ct(0, 0);
  std::string err;
  EXPECT_FALSE(p.validate(g2, net, &err));
  EXPECT_NE(err.find("shape"), std::string::npos);
}

TEST(ApiSurface, AvailabilityMcValidation) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n", ResourceVector::scalar(1), 0.1);
  EXPECT_THROW(availability_any_mc(net, {}, 100, 1),
               std::invalid_argument);
  EXPECT_THROW(
      availability_any_mc(net, {{ElementKey::ncp(0)}}, 0, 1),
      std::invalid_argument);
  EXPECT_THROW(min_rate_availability_mc(net, {{ElementKey::ncp(0)}},
                                        {1.0, 2.0}, 0.5, 100, 1),
               std::invalid_argument);
}

TEST(ApiSurface, ScenarioParserRejectsMoreMalformedInput) {
  using workload::parse_scenario_text;
  EXPECT_THROW(parse_scenario_text("resources a b c\n"),
               std::runtime_error);  // 3 resource types unsupported
  EXPECT_THROW(parse_scenario_text("ncp a 1 fail=lots\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario_text("ncp a 1\napp x gr 1\n"),
               std::runtime_error);  // gr needs two params
  EXPECT_THROW(
      parse_scenario_text("ncp a 1\nncp b 1\ndlink d a b 5\ndlink d b a 5\n"),
      std::runtime_error);  // duplicate link name
}

TEST(ApiSurface, WriteScenarioOfGrAppsRoundTrips) {
  const std::string text = R"(
ncp a 10
ncp b 10
dlink up a b 100
app g gr 2.5 0.85
  ct s 0
  ct t 1
  tt st 1 s t
  pin s a
  pin t b
end
)";
  const auto sf = workload::parse_scenario_text(text);
  const auto again =
      workload::parse_scenario_text(workload::write_scenario(sf));
  ASSERT_EQ(again.apps.size(), 1u);
  EXPECT_EQ(again.apps[0].qoe.cls, QoeClass::kGuaranteedRate);
  EXPECT_DOUBLE_EQ(again.apps[0].qoe.min_rate, 2.5);
  EXPECT_DOUBLE_EQ(again.apps[0].qoe.min_rate_availability, 0.85);
  EXPECT_TRUE(again.net.link(0).directed);
}

TEST(ApiSurface, LatencyEstimateOnMultiHopRoute) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(100));
  net.add_ncp("b", ResourceVector::scalar(100));
  net.add_ncp("c", ResourceVector::scalar(100));
  net.add_link("ab", 0, 1, 10.0);
  net.add_link("bc", 1, 2, 5.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("st", 10.0, s, t);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(t, 2);
  p.place_tt(0, {0, 1});
  const LatencyEstimate e = estimate_latency(net, g, p, 0.0);
  ASSERT_TRUE(e.stable);
  // Store-and-forward: 10/10 + 10/5 = 3 s.
  EXPECT_DOUBLE_EQ(e.tt_sojourn[0], 3.0);
  EXPECT_DOUBLE_EQ(e.total, 3.0);
}

}  // namespace
}  // namespace sparcle
