#include "model/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "model/capacity.hpp"
#include "model/network.hpp"
#include "model/task_graph.hpp"

namespace sparcle {
namespace {

/// A 4-NCP network shaped like Fig. 2's example (simplified): a square
/// 0-1-2-3 with a diagonal.
Network make_square() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n0", ResourceVector::scalar(100));
  net.add_ncp("n1", ResourceVector::scalar(50));
  net.add_ncp("n2", ResourceVector::scalar(80));
  net.add_ncp("n3", ResourceVector::scalar(60));
  net.add_link("l0", 0, 1, 10);  // 0-1
  net.add_link("l1", 1, 2, 20);  // 1-2
  net.add_link("l2", 2, 3, 30);  // 2-3
  net.add_link("l3", 3, 0, 40);  // 3-0
  net.add_link("l4", 0, 2, 50);  // diagonal
  return net;
}

TaskGraph make_chain() {
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(5));
  const CtId b = g.add_ct("b", ResourceVector::scalar(10));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sa", 2, s, a);
  g.add_tt("ab", 4, a, b);
  g.add_tt("bt", 1, b, t);
  g.finalize();
  return g;
}

TEST(Placement, CompleteRequiresEverything) {
  const TaskGraph g = make_chain();
  Placement p(g);
  EXPECT_FALSE(p.complete());
  p.place_ct(0, 0);
  p.place_ct(1, 0);
  p.place_ct(2, 2);
  p.place_ct(3, 2);
  EXPECT_FALSE(p.complete());
  p.place_tt(0, {});
  p.place_tt(1, {4});
  p.place_tt(2, {});
  EXPECT_TRUE(p.complete());
}

TEST(Placement, ValidateAcceptsContiguousRoutes) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 1);
  p.place_ct(2, 3);
  p.place_ct(3, 3);
  p.place_tt(0, {0});        // 0 -> 1 over l0
  p.place_tt(1, {1, 2});     // 1 -> 2 -> 3
  p.place_tt(2, {});         // co-located
  std::string err;
  EXPECT_TRUE(p.validate(g, net, &err)) << err;
}

TEST(Placement, ValidateRejectsBrokenRoute) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 1);
  p.place_ct(2, 3);
  p.place_ct(3, 3);
  p.place_tt(0, {0});
  p.place_tt(1, {2});  // l2 = 2-3 does not start at NCP 1
  p.place_tt(2, {});
  std::string err;
  EXPECT_FALSE(p.validate(g, net, &err));
  EXPECT_NE(err.find("not contiguous"), std::string::npos);
}

TEST(Placement, ValidateRejectsRouteEndingElsewhere) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 1);
  p.place_ct(2, 3);
  p.place_ct(3, 3);
  p.place_tt(0, {0});
  p.place_tt(1, {1});  // ends at NCP 2, not 3
  p.place_tt(2, {});
  EXPECT_FALSE(p.validate(g, net, nullptr));
}

TEST(Placement, ValidateRejectsEmptyRouteAcrossNodes) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 1);
  p.place_ct(2, 3);
  p.place_ct(3, 3);
  p.place_tt(0, {0});
  p.place_tt(1, {});  // hosts differ: must not be empty
  p.place_tt(2, {});
  EXPECT_FALSE(p.validate(g, net, nullptr));
}

TEST(Placement, UsedElementsDeduplicates) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);
  p.place_ct(2, 2);
  p.place_ct(3, 2);
  p.place_tt(0, {});
  p.place_tt(1, {4});  // the direct 0-2 diagonal: no transit NCP
  p.place_tt(2, {});
  const auto used = p.used_elements(g, net);
  // NCPs {0, 2} and link {4}.
  EXPECT_EQ(used.size(), 3u);
}

TEST(Placement, UsedElementsIncludesTransitNcps) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);
  p.place_ct(2, 2);
  p.place_ct(3, 2);
  p.place_tt(0, {});
  p.place_tt(1, {0, 1});  // 0 -> 1 -> 2: NCP 1 forwards the stream
  p.place_tt(2, {});
  const auto used = p.used_elements(g, net);
  // NCPs {0, 1, 2} and links {0, 1}.
  EXPECT_EQ(used.size(), 5u);
  EXPECT_NE(std::find(used.begin(), used.end(), ElementKey::ncp(1)),
            used.end());
}

TEST(LoadMap, AccumulatesPerElementLoads) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);  // a (5) on n0
  p.place_ct(2, 2);  // b (10) on n2
  p.place_ct(3, 2);
  p.place_tt(0, {});
  p.place_tt(1, {4});  // ab (4 bits) over the diagonal
  p.place_tt(2, {});
  const LoadMap load(net, g, p);
  EXPECT_DOUBLE_EQ(load.ncp_load(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(load.ncp_load(2)[0], 10.0);
  EXPECT_DOUBLE_EQ(load.ncp_load(1)[0], 0.0);
  EXPECT_DOUBLE_EQ(load.link_load(4), 4.0);
  EXPECT_DOUBLE_EQ(load.link_load(0), 0.0);
}

TEST(LoadMap, AddScaledAggregatesPaths) {
  const Network net = make_square();
  LoadMap total = LoadMap::zeros(net);
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);
  p.place_ct(2, 2);
  p.place_ct(3, 2);
  p.place_tt(0, {});
  p.place_tt(1, {4});
  p.place_tt(2, {});
  const LoadMap one(net, g, p);
  total.add_scaled(one, 2.0);
  total.add_scaled(one, 0.5);
  EXPECT_DOUBLE_EQ(total.ncp_load(0)[0], 12.5);
  EXPECT_DOUBLE_EQ(total.link_load(4), 10.0);
}

TEST(BottleneckRate, MatchesPaperFormula) {
  // The §IV-A worked example structure: rate = min over loaded elements of
  // capacity / summed per-unit load.
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);  // n0: load 5, cap 100 -> 20
  p.place_ct(2, 2);  // n2: load 10, cap 80 -> 8
  p.place_ct(3, 2);
  p.place_tt(0, {});
  p.place_tt(1, {4});  // l4: load 4, cap 50 -> 12.5
  p.place_tt(2, {});
  const CapacitySnapshot cap(net);
  EXPECT_DOUBLE_EQ(bottleneck_rate(net, g, p, cap), 8.0);
}

TEST(BottleneckRate, MultipleTasksOnOneElementSumLoads) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  for (CtId i = 0; i < 4; ++i) p.place_ct(i, 1);  // everything on n1 (50)
  for (TtId k = 0; k < 3; ++k) p.place_tt(k, {});
  const CapacitySnapshot cap(net);
  // Sum of CT loads on n1 = 15 -> rate 50/15.
  EXPECT_NEAR(bottleneck_rate(net, g, p, cap), 50.0 / 15.0, 1e-12);
}

TEST(BottleneckRate, EmptyLoadIsUnbounded) {
  const Network net = make_square();
  const LoadMap load = LoadMap::zeros(net);
  const CapacitySnapshot cap(net);
  EXPECT_EQ(bottleneck_rate(cap, load),
            std::numeric_limits<double>::infinity());
}

TEST(BottleneckRate, ZeroCapacityLoadedElementGivesZero) {
  const Network net = make_square();
  const TaskGraph g = make_chain();
  Placement p(g);
  for (CtId i = 0; i < 4; ++i) p.place_ct(i, 1);
  for (TtId k = 0; k < 3; ++k) p.place_tt(k, {});
  CapacitySnapshot cap(net);
  cap.ncp(1)[0] = 0.0;
  EXPECT_DOUBLE_EQ(bottleneck_rate(net, g, p, cap), 0.0);
}

TEST(BottleneckRate, MultiResourceTakesWorstType) {
  Network net(ResourceSchema::cpu_memory());
  net.add_ncp("n", ResourceVector{100.0, 10.0});
  net.add_ncp("m", ResourceVector{100.0, 100.0});
  net.add_link("l", 0, 1, 1000);
  TaskGraph g(ResourceSchema::cpu_memory());
  const CtId a = g.add_ct("a", ResourceVector{5.0, 5.0});
  const CtId b = g.add_ct("b", ResourceVector{5.0, 5.0});
  g.add_tt("t", 1, a, b);
  g.finalize();
  Placement p(g);
  p.place_ct(a, 0);
  p.place_ct(b, 1);
  p.place_tt(0, {0});
  const CapacitySnapshot cap(net);
  // NCP 0: cpu 100/5 = 20, memory 10/5 = 2  -> memory binds.
  EXPECT_DOUBLE_EQ(bottleneck_rate(net, g, p, cap), 2.0);
}

}  // namespace
}  // namespace sparcle
