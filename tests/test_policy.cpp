#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "core/scheduler.hpp"
#include "policy/policy.hpp"
#include "soak/soak.hpp"
#include "testutil.hpp"
#include "workload/scenario_io.hpp"

// Scheduling-policy plugin properties (docs/policies.md):
//  * registry round-trips and rejects unknown names;
//  * each decision point's base rule and each plugin's override behave
//    as documented on hand-built inputs;
//  * DefaultPolicy is BIT-IDENTICAL to running with no policy installed
//    — the pre-refactor hard-coded rules — across the checked-in `.scn`
//    corpus and seeded random scenarios, through admission, failure,
//    repair, recovery, and removal;
//  * every policy is deterministic: identical soak inputs reproduce the
//    identical decision digest.

namespace sparcle {
namespace {

TEST(PolicyRegistry, NamesRoundTripThroughMakePolicy) {
  const std::vector<std::string> names = policy::policy_names();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names.front(), "default");
  for (const std::string& name : names) {
    const std::unique_ptr<policy::SchedulingPolicy> p =
        policy::make_policy(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
  EXPECT_THROW(policy::make_policy("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Decision-point unit behavior on hand-built inputs.

std::vector<policy::PendingApp> three_pending(Application& a, Application& b,
                                              Application& c) {
  // arrival order: a (big, late deadline, many bits), b (small, middle),
  // c (middle size, earliest deadline, fewest bits).
  return {{&a, 0.0, 30.0, 9.0, 50.0},
          {&b, 1.0, 20.0, 2.0, 30.0},
          {&c, 2.0, 10.0, 5.0, 10.0}};
}

TEST(PolicyDecisions, PickNextPerPolicy) {
  Application a, b, c;
  std::vector<policy::PendingApp> pending = three_pending(a, b, c);
  EXPECT_EQ(policy::DefaultPolicy().pick_next(pending), 0u);  // FIFO
  EXPECT_EQ(policy::ShortestJobFirstPolicy().pick_next(pending), 1u);
  EXPECT_EQ(policy::DeadlineAwarePolicy().pick_next(pending), 2u);  // EDF
  EXPECT_EQ(policy::EnergyAwarePolicy().pick_next(pending), 2u);  // min bits
}

TEST(PolicyDecisions, RepairOrderBaseRule) {
  Application gr_big, gr_small, be_hi, be_lo;
  gr_big.qoe = QoeSpec::guaranteed_rate(2.0, 0.0);
  gr_small.qoe = QoeSpec::guaranteed_rate(0.5, 0.0);
  be_hi.qoe = QoeSpec::best_effort(4.0);
  be_lo.qoe = QoeSpec::best_effort(1.0);
  const policy::RepairCandidate rb{&gr_big, 2.0, 1, 10.0};
  const policy::RepairCandidate rs{&gr_small, 0.5, 1, 1.0};
  const policy::RepairCandidate bh{&be_hi, 0.3, 1, 5.0};
  const policy::RepairCandidate bl{&be_lo, 0.3, 0, 2.0};

  const policy::DefaultPolicy def;
  EXPECT_TRUE(def.repair_before(rb, rs));   // larger guarantee first
  EXPECT_TRUE(def.repair_before(rs, bh));   // GR before BE
  EXPECT_TRUE(def.repair_before(bh, bl));   // higher priority first
  EXPECT_FALSE(def.repair_before(bl, bh));

  // SJF restores the cheap GR app first, still never BE before GR.
  const policy::ShortestJobFirstPolicy sjf;
  EXPECT_TRUE(sjf.repair_before(rs, rb));
  EXPECT_TRUE(sjf.repair_before(rb, bl));

  // Deadline-aware: the zero-alive-path BE app jumps the healthy one.
  const policy::DeadlineAwarePolicy edf;
  EXPECT_TRUE(edf.repair_before(bl, bh));
}

// ---------------------------------------------------------------------
// DefaultPolicy == no-policy, bit for bit.

void expect_identical_state(const Scheduler& legacy,
                            const Scheduler& plugged,
                            const std::string& tag) {
  const auto& a = legacy.placed();
  const auto& b = plugged.placed();
  ASSERT_EQ(a.size(), b.size()) << tag;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(tag + " app " + a[i].app.name);
    ASSERT_EQ(a[i].app.name, b[i].app.name);
    // Bitwise rate equality: the plugin path must not even reorder
    // floating-point operations.
    EXPECT_EQ(std::memcmp(&a[i].allocated_rate, &b[i].allocated_rate,
                          sizeof(double)),
              0)
        << a[i].allocated_rate << " vs " << b[i].allocated_rate;
    ASSERT_EQ(a[i].paths.size(), b[i].paths.size());
    ASSERT_EQ(a[i].path_rates.size(), b[i].path_rates.size());
    for (std::size_t p = 0; p < a[i].paths.size(); ++p) {
      EXPECT_EQ(std::memcmp(&a[i].path_rates[p], &b[i].path_rates[p],
                            sizeof(double)),
                0);
      const std::size_t cts = a[i].app.graph->ct_count();
      for (CtId ct = 0; ct < static_cast<CtId>(cts); ++ct)
        EXPECT_EQ(a[i].paths[p].placement.ct_host(ct),
                  b[i].paths[p].placement.ct_host(ct))
            << "path " << p << " ct " << ct;
      ASSERT_EQ(a[i].paths[p].elements.size(), b[i].paths[p].elements.size());
    }
  }
}

/// Drives both schedulers through the identical admission + failure +
/// repair + recovery + removal sequence and compares full state after
/// every phase.
void run_equivalence(const workload::ScenarioFile& scenario,
                     const std::string& tag) {
  SchedulerOptions legacy_options;  // policy == nullptr: pre-refactor path
  SchedulerOptions plugged_options;
  plugged_options.policy = std::make_shared<policy::DefaultPolicy>();
  Scheduler legacy(scenario.net, legacy_options);
  Scheduler plugged(scenario.net, plugged_options);

  for (const Application& app : scenario.apps) {
    const AdmissionResult ra = legacy.submit(app);
    const AdmissionResult rb = plugged.submit(app);
    EXPECT_EQ(ra.admitted, rb.admitted) << tag << " app " << app.name;
  }
  expect_identical_state(legacy, plugged, tag + " after admission");

  // Fail every other link, repairing after each — the repair-ordering
  // decision point — then recover and fail an NCP for the node path.
  const std::size_t links = scenario.net.link_count();
  for (std::size_t l = 0; l < links; l += 2) {
    const ElementKey dead{ElementKey::Kind::kLink,
                          static_cast<std::int32_t>(l)};
    legacy.mark_failed(dead);
    plugged.mark_failed(dead);
    legacy.repair(dead);
    plugged.repair(dead);
  }
  expect_identical_state(legacy, plugged, tag + " after link churn");
  for (std::size_t l = 0; l < links; l += 2) {
    const ElementKey dead{ElementKey::Kind::kLink,
                          static_cast<std::int32_t>(l)};
    legacy.mark_recovered(dead);
    plugged.mark_recovered(dead);
  }
  if (scenario.net.ncp_count() > 1) {
    const ElementKey dead{ElementKey::Kind::kNcp, 1};
    legacy.mark_failed(dead);
    plugged.mark_failed(dead);
    legacy.repair(dead);
    plugged.repair(dead);
    expect_identical_state(legacy, plugged, tag + " after ncp failure");
  }

  // Remove the first admitted app from both.
  if (!legacy.placed().empty()) {
    const std::string name = legacy.placed().front().app.name;
    EXPECT_TRUE(legacy.remove(name));
    EXPECT_TRUE(plugged.remove(name));
    expect_identical_state(legacy, plugged, tag + " after removal");
  }
}

TEST(DefaultPolicyEquivalence, SceneCorpus) {
  run_equivalence(workload::load_scenario_file(
                      std::string(SPARCLE_SOURCE_DIR) +
                      "/examples/scenarios/edge_campus.scn"),
                  "edge_campus");
}

TEST(DefaultPolicyEquivalence, SeededRandomScenarios) {
  check::FuzzOptions gen;
  gen.max_ncps = 8;
  gen.max_apps = 6;
  const std::size_t scenarios =
      testutil::env_size("SPARCLE_POLICY_EQUIV_SCENARIOS", 25);
  for (std::size_t i = 0; i < scenarios; ++i) {
    const std::uint64_t seed = testutil::test_seed() + 0xe90 + i * 7919;
    Rng rng(seed);
    SCOPED_TRACE(testutil::seed_message(seed));
    run_equivalence(check::random_scenario(rng, gen),
                    "random#" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------
// Determinism: identical inputs -> identical decision digest, for every
// policy, including the churn-interleaved scenario.

TEST(PolicyDeterminism, IdenticalDigestAcrossRuns) {
  for (const std::string& name : policy::policy_names()) {
    for (const std::string& scenario : {std::string("flash_crowd"),
                                        std::string("regional_outage")}) {
      const std::uint64_t seed = testutil::test_seed() + 0xd1ce;
      soak::SoakOptions options =
          soak::cell_options(scenario, name, 150, seed);
      options.invariant_epochs = 0;  // speed: determinism is the subject
      const soak::SoakResult r1 = soak::run_soak(options);
      const soak::SoakResult r2 = soak::run_soak(options);
      EXPECT_EQ(r1.decision_digest, r2.decision_digest)
          << name << " x " << scenario << testutil::seed_message(seed);
      EXPECT_EQ(r1.admitted, r2.admitted) << name << " x " << scenario;
      EXPECT_EQ(r1.reneged, r2.reneged) << name << " x " << scenario;
    }
  }
}

}  // namespace
}  // namespace sparcle
