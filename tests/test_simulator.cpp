#include "sim/stream_simulator.hpp"

#include <gtest/gtest.h>

#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"
#include "workload/task_graphs.hpp"

namespace sparcle {
namespace {

using sim::SimReport;
using sim::StreamSimulator;

/// One-CT pipeline on a single NCP: src -> work -> sink, all co-located.
struct SingleNodeFixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  Placement placement;

  explicit SingleNodeFixture(double capacity = 10.0, double work = 5.0) {
    net.add_ncp("n", ResourceVector::scalar(capacity));
    const CtId s = graph.add_ct("s", ResourceVector::scalar(0));
    const CtId w = graph.add_ct("w", ResourceVector::scalar(work));
    const CtId t = graph.add_ct("t", ResourceVector::scalar(0));
    graph.add_tt("sw", 1, s, w);
    graph.add_tt("wt", 1, w, t);
    graph.finalize();
    placement = Placement(graph);
    for (CtId i = 0; i < 3; ++i) placement.place_ct(i, 0);
    for (TtId k = 0; k < 2; ++k) placement.place_tt(k, {});
  }
};

TEST(Simulator, DeliversEveryUnitBelowCapacity) {
  SingleNodeFixture f;  // capacity 10 / work 5 -> max rate 2
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 1.0);
  const SimReport r = sim.run(200.0, 50.0);
  EXPECT_NEAR(r.streams[0].throughput, 1.0, 0.05);
  // Latency of a lone unit: 5/10 = 0.5 s.
  EXPECT_NEAR(r.streams[0].mean_latency, 0.5, 1e-6);
}

TEST(Simulator, ThroughputSaturatesAtBottleneckRate) {
  SingleNodeFixture f;  // stable limit 2.0
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 5.0);  // 2.5x overload
  const SimReport r = sim.run(300.0, 100.0);
  EXPECT_NEAR(r.streams[0].throughput, 2.0, 0.08);
  EXPECT_LT(r.streams[0].delivered, r.streams[0].emitted);
}

TEST(Simulator, UtilizationMatchesOfferedLoad) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 1.0);  // load = 1 * 5/10 = 0.5
  const SimReport r = sim.run(400.0);
  EXPECT_NEAR(r.ncp_utilization[0], 0.5, 0.03);
}

TEST(Simulator, LinkTransfersAddLatencyAndBound) {
  // src(ct) on n0, work on n1 across a 2 bits/s link carrying 4-bit units.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n0", ResourceVector::scalar(100));
  net.add_ncp("n1", ResourceVector::scalar(100));
  net.add_link("l", 0, 1, 2.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId w = g.add_ct("w", ResourceVector::scalar(1));
  g.add_tt("sw", 4.0, s, w);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(w, 1);
  p.place_tt(0, {0});

  StreamSimulator sim(net);
  sim.add_stream(g, p, 0.25);  // transfer takes 2 s; capacity 0.5/s
  const SimReport r = sim.run(400.0, 100.0);
  EXPECT_NEAR(r.streams[0].throughput, 0.25, 0.03);
  EXPECT_NEAR(r.streams[0].mean_latency, 2.0 + 0.01, 0.05);
  EXPECT_NEAR(r.link_utilization[0], 0.5, 0.05);
}

TEST(Simulator, FanInWaitsForBothBranches) {
  // src fans out to two branches with different speeds; the join (sink-side
  // CT) must wait for the slower one.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("n", ResourceVector::scalar(1.0));
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(0.1));
  const CtId b = g.add_ct("b", ResourceVector::scalar(0.3));
  const CtId j = g.add_ct("join", ResourceVector::scalar(0));
  g.add_tt("sa", 0, s, a);
  g.add_tt("sb", 0, s, b);
  g.add_tt("aj", 0, a, j);
  g.add_tt("bj", 0, b, j);
  g.finalize();
  Placement p(g);
  for (CtId i = 0; i < 4; ++i) p.place_ct(i, 0);
  for (TtId k = 0; k < 4; ++k) p.place_tt(k, {});

  StreamSimulator sim(net);
  sim.add_stream(g, p, 0.1);  // light load: no queueing to speak of
  const SimReport r = sim.run(500.0, 100.0);
  // A lone unit: a and b run in parallel (PS: both active -> 2x slowdown
  // while overlapping).  a alone takes 0.1, b alone 0.3; sharing the server
  // for the first 0.2s they each get half speed: a finishes at 0.2, b has
  // 0.2 of work left and finishes at 0.4.
  EXPECT_NEAR(r.streams[0].mean_latency, 0.4, 0.05);
  EXPECT_NEAR(r.streams[0].throughput, 0.1, 0.01);
}

TEST(Simulator, MultipleStreamsShareAnNcpFairly) {
  SingleNodeFixture f(10.0, 5.0);
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 3.0);  // joint overload
  sim.add_stream(f.graph, f.placement, 3.0);
  const SimReport r = sim.run(300.0, 100.0);
  // The NCP sustains 2 units/s total; each stream gets about half.
  EXPECT_NEAR(r.streams[0].throughput + r.streams[1].throughput, 2.0, 0.1);
  EXPECT_NEAR(r.streams[0].throughput, r.streams[1].throughput, 0.15);
}

TEST(Simulator, FailuresReduceThroughputProportionally) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net, 7);
  sim.add_stream(f.graph, f.placement, 1.0);
  // Down half the time (mean up 5 s, mean down 5 s) with offered load 0.5
  // of capacity: the server can still almost keep up on average (load 0.5
  // vs availability 0.5), so throughput lands near the capacity limit
  // availability * 2.0 = 1.0 but queueing during outages bites; expect
  // clearly less than the failure-free 1.0 only in latency, and throughput
  // within [0.8, 1.0].
  sim.add_failure(ElementKey::ncp(0), 5.0, 5.0);
  const SimReport r = sim.run(2000.0, 200.0);
  EXPECT_LE(r.streams[0].throughput, 1.02);
  EXPECT_GE(r.streams[0].throughput, 0.8);
}

TEST(Simulator, HardFailureStallsDelivery) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net, 7);
  sim.add_stream(f.graph, f.placement, 1.0);
  // Mean up 1 s, mean down 10000 s: effectively dies at the start.
  sim.add_failure(ElementKey::ncp(0), 1.0, 10000.0);
  const SimReport r = sim.run(500.0, 0.0);
  EXPECT_LT(r.streams[0].throughput, 0.05);
}

TEST(Simulator, PoissonArrivalsDeliverTheSameMeanRate) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net, 42);
  sim.add_stream(f.graph, f.placement, 1.0, /*poisson=*/true);
  const SimReport r = sim.run(2000.0, 200.0);
  EXPECT_NEAR(r.streams[0].throughput, 1.0, 0.05);
}

TEST(Simulator, RejectsBadInputs) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net);
  EXPECT_THROW(sim.add_stream(f.graph, f.placement, 0.0),
               std::invalid_argument);
  Placement incomplete(f.graph);
  EXPECT_THROW(sim.add_stream(f.graph, incomplete, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sim.add_failure(ElementKey::ncp(0), 0.0, 1.0),
               std::invalid_argument);
  sim.add_stream(f.graph, f.placement, 1.0);
  EXPECT_THROW(sim.run(10.0, 20.0), std::invalid_argument);
  (void)sim.run(10.0, 1.0);
  EXPECT_THROW(sim.run(10.0, 1.0), std::logic_error);  // run() twice
}


TEST(Simulator, OutageWindowStallsService) {
  SingleNodeFixture f;  // capacity 10, work 5: service 0.5 s/unit
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 1.0);
  // The NCP is down for [100, 200): about 100 units of work back up, then
  // drain at 2/s after recovery; total delivered over 400 s is still
  // close to 400 (the backlog drains), but utilization reflects the gap.
  sim.add_outage(ElementKey::ncp(0), 100.0, 200.0);
  const SimReport r = sim.run(400.0);
  EXPECT_NEAR(static_cast<double>(r.streams[0].delivered), 400.0, 15.0);
  EXPECT_GT(r.streams[0].max_latency, 50.0);  // units caught in the outage
}

TEST(Simulator, OutageValidation) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net);
  EXPECT_THROW(sim.add_outage(ElementKey::ncp(0), -1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(sim.add_outage(ElementKey::ncp(0), 5.0, 5.0),
               std::invalid_argument);
}

TEST(Simulator, OverlappingOutagesCompose) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net);
  sim.add_stream(f.graph, f.placement, 1.0);
  // Two overlapping windows: down during [50, 150) in total.
  sim.add_outage(ElementKey::ncp(0), 50.0, 120.0);
  sim.add_outage(ElementKey::ncp(0), 100.0, 150.0);
  const SimReport r = sim.run(400.0);
  // Busy time: the server works 300 s of wall clock at load 0.5 plus the
  // 100 s backlog drain at full speed: utilization well below 1 but the
  // deliveries still complete.
  EXPECT_NEAR(static_cast<double>(r.streams[0].delivered), 400.0, 15.0);
}


TEST(Simulator, PacketizationPipelinesMultiHopTransfers) {
  // A 2-hop route carrying 10-bit units over 1 bit/s links.  Whole-unit
  // store-and-forward: 10 s per hop = 20 s.  With 1-bit packets the hops
  // overlap: ~11 s.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(100));
  net.add_ncp("b", ResourceVector::scalar(100));
  net.add_ncp("c", ResourceVector::scalar(100));
  net.add_link("ab", 0, 1, 1.0);
  net.add_link("bc", 1, 2, 1.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("st", 10.0, s, t);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(t, 2);
  p.place_tt(0, {0, 1});

  const double rate = 0.02;  // light load
  StreamSimulator whole(net);
  whole.add_stream(g, p, rate);
  const auto r_whole = whole.run(2000, 200);
  EXPECT_NEAR(r_whole.streams[0].mean_latency, 20.0, 0.5);

  StreamSimulator packets(net);
  packets.add_stream(g, p, rate, false, /*packet_bits=*/1.0);
  const auto r_pkt = packets.run(2000, 200);
  EXPECT_NEAR(r_pkt.streams[0].mean_latency, 11.0, 0.5);
  // Throughput unchanged.
  EXPECT_NEAR(r_pkt.streams[0].throughput, r_whole.streams[0].throughput,
              0.002);
}

TEST(Simulator, PacketizationHandlesRemainderPackets) {
  // 10 bits into 4-bit packets: 4 + 4 + 2.  Single hop at 1 bit/s: the
  // transfer still takes 10 s in total.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(100));
  net.add_ncp("b", ResourceVector::scalar(100));
  net.add_link("ab", 0, 1, 1.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("st", 10.0, s, t);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(t, 1);
  p.place_tt(0, {0});
  StreamSimulator sim(net);
  sim.add_stream(g, p, 0.02, false, 4.0);
  const auto r = sim.run(2000, 200);
  EXPECT_NEAR(r.streams[0].mean_latency, 10.0, 0.2);
}

TEST(Simulator, PacketizationPreservesStability) {
  // Near the stable limit, packetized and whole-unit throughput agree.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(100));
  net.add_ncp("b", ResourceVector::scalar(10));
  net.add_link("ab", 0, 1, 20.0);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId w = g.add_ct("w", ResourceVector::scalar(5));
  g.add_tt("sw", 8.0, s, w);
  g.finalize();
  Placement p(g);
  p.place_ct(s, 0);
  p.place_ct(w, 1);
  p.place_tt(0, {0});
  // Bottleneck: min(10/5, 20/8) = 2 units/s; offer 1.9.
  StreamSimulator sim(net, 3);
  sim.add_stream(g, p, 1.9, false, 1.0);
  const auto r = sim.run(500, 100);
  EXPECT_NEAR(r.streams[0].throughput, 1.9, 0.08);
}

TEST(Simulator, NegativePacketBitsRejected) {
  SingleNodeFixture f;
  StreamSimulator sim(f.net);
  EXPECT_THROW(sim.add_stream(f.graph, f.placement, 1.0, false, -1.0),
               std::invalid_argument);
}

/// End-to-end property: for random scenarios, simulating SPARCLE's
/// placement at 90% of the analytic bottleneck rate delivers that rate.
class SimMatchesAnalytic : public ::testing::TestWithParam<int> {};

TEST_P(SimMatchesAnalytic, ThroughputTracksBottleneckRate) {
  Rng rng(GetParam());
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kDiamond;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  const workload::Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);

  StreamSimulator sim(sc.net, GetParam());
  const double rate = 0.9 * r.rate;
  sim.add_stream(*sc.graph, r.placement, rate);
  const double horizon = 400.0 / rate;  // ~400 units
  const SimReport rep = sim.run(horizon, horizon * 0.25);
  EXPECT_NEAR(rep.streams[0].throughput, rate, 0.06 * rate)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimMatchesAnalytic, ::testing::Range(1, 11));

}  // namespace
}  // namespace sparcle
