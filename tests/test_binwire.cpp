#include "service/binwire.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/event_server.hpp"
#include "service/wire.hpp"
#include "workload/scenario_io.hpp"

/// \file test_binwire.cpp
/// The binary wire codec and the event-loop server: field-map round
/// trips, json<->binary equivalence for every verb, fuzz-style malformed
/// frame rejection, mixed-codec sessions against one server, partial
/// frame reassembly, oversized-request structured rejects, and the idle
/// sweep.

namespace sparcle {
namespace {

namespace binwire = service::binwire;
namespace wire = service::wire;
using service::Codec;
using service::SchedulerService;
using service::ServiceResult;
using Fields = std::map<std::string, std::string>;

// ---------------------------------------------------------------------------
// Fixtures (the test_service two-relay classic)

Network make_two_relay_net(double relay_cap = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(relay_cap));
  net.add_ncp("r2", ResourceVector::scalar(relay_cap));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

std::shared_ptr<const TaskGraph> make_relay_graph(double mid_cpu = 1.0) {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(mid_cpu));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  return g;
}

Application make_app(const std::string& name, QoeSpec qoe,
                     double mid_cpu = 1.0) {
  Application app;
  app.name = name;
  app.graph = make_relay_graph(mid_cpu);
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

// ---------------------------------------------------------------------------
// Raw-socket helpers

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  timeval tv{};
  tv.tv_sec = 10;  // a hung server fails the test instead of wedging CI
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void send_raw(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads one complete binary frame (decoded) off a raw socket.
binwire::Frame recv_frame(int fd, std::string& buffer) {
  char chunk[4096];
  for (;;) {
    const std::size_t len = binwire::frame_length(buffer);
    if (len != 0) {
      binwire::Frame frame = binwire::decode(buffer.substr(0, len));
      buffer.erase(0, len);
      return frame;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    EXPECT_GT(n, 0) << "connection closed before a full frame arrived";
    if (n <= 0) return binwire::Frame{};
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Reads one JSON response line off a raw socket.
std::string recv_line(int fd, std::string& buffer) {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return line;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    EXPECT_GT(n, 0) << "connection closed before a full line arrived";
    if (n <= 0) return "";
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// True when the peer has closed the connection (recv sees EOF).
bool recv_eof(int fd) {
  char chunk[64];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return true;
    if (n < 0) return false;  // timeout or error: not a clean close
  }
}

// ---------------------------------------------------------------------------
// Codec: round trips

TEST(Binwire, FieldMapRoundTripsExactly) {
  const std::vector<Fields> cases = {
      {},
      {{"verb", "query"}},
      {{"status", "ok"}, {"apps", "3"}, {"rate", "2.5"}},
      {{"reason", "line with \"quotes\" and\nnewlines\tand \\ slashes"}},
      {{"body", std::string("nul byte: \0 inside", 18)}},
      {{"custom_key_not_in_table", "value"}, {"x", ""}},
      {{"u64max", "18446744073709551615"}, {"neg", "-42"}},
      {{"t", "true"}, {"f", "false"}},
      {{"pi", "3.141592653589793"}, {"tiny", "1e-300"}},
      {{std::string(200, 'k'), std::string(5000, 'v')}},
  };
  for (const Fields& fields : cases) {
    const std::string payload = binwire::encode_fields(fields);
    EXPECT_EQ(binwire::decode_fields(payload), fields);
    const std::string frame =
        binwire::encode(binwire::FrameType::kReply, fields);
    const binwire::Frame decoded = binwire::decode(frame);
    EXPECT_EQ(decoded.type, binwire::FrameType::kReply);
    EXPECT_EQ(decoded.fields, fields);
  }
}

TEST(Binwire, AwkwardNumericTextsSurviveExactly) {
  // Texts that LOOK numeric but do not round-trip through a binary
  // number must fall back to strings: the decoded text is byte-identical.
  const std::vector<std::string> values = {
      "007", "-0", "+1", "1.0", "1e2", "0x10", " 42", "42 ", "1.", ".5",
      "9999999999999999999999999999", "NaN", "inf", "true ", "True",
  };
  for (const std::string& v : values) {
    const Fields fields = {{"rate", v}};
    EXPECT_EQ(binwire::decode_fields(binwire::encode_fields(fields)), fields)
        << "value '" << v << "'";
  }
}

TEST(Binwire, HeaderLayoutIsStable) {
  const std::string frame =
      binwire::encode(binwire::FrameType::kQuery, Fields{});
  ASSERT_GE(frame.size(), binwire::kHeaderBytes);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[0]), binwire::kMagic);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[1]), binwire::kVersion);
  EXPECT_EQ(static_cast<std::uint8_t>(frame[2]), 0x03);  // kQuery
  EXPECT_EQ(static_cast<std::uint8_t>(frame[3]), 0);     // flags
  EXPECT_EQ(binwire::frame_length(frame), frame.size());
}

TEST(Binwire, VerbNamesRoundTrip) {
  const std::vector<std::string> verbs = {"submit", "remove", "query",
                                          "drain", "stats", "metrics"};
  for (const std::string& verb : verbs) {
    const binwire::FrameType type = binwire::verb_type(verb);
    EXPECT_TRUE(binwire::is_request(type));
    EXPECT_STREQ(binwire::verb_name(type), verb.c_str());
  }
  EXPECT_FALSE(binwire::is_request(binwire::FrameType::kReply));
  EXPECT_FALSE(binwire::is_request(binwire::FrameType::kError));
  EXPECT_THROW(binwire::verb_type("frobnicate"), binwire::Error);
}

TEST(Binwire, EveryVerbEncodesJsonEquivalently) {
  const Network net = make_two_relay_net();
  const std::string block =
      workload::write_app_text(make_app("eq", QoeSpec::best_effort(1.5)), net);
  const std::vector<Fields> requests = {
      {{"verb", "submit"}, {"app", block}},
      {{"verb", "remove"}, {"name", "eq"}},
      {{"verb", "query"}},
      {{"verb", "query"}, {"name", "eq"}},
      {{"verb", "drain"}},
      {{"verb", "stats"}},
      {{"verb", "metrics"}},
  };
  for (const Fields& request : requests) {
    // JSON side: the line codec reproduces the map.
    EXPECT_EQ(wire::parse_line(wire::to_line(request)), request);
    // Binary side: the frame carries the verb in the type byte and the
    // rest of the map in the payload.
    const std::string frame = binwire::encode_request(request);
    const binwire::Frame decoded = binwire::decode(frame);
    Fields reassembled = decoded.fields;
    reassembled["verb"] = binwire::verb_name(decoded.type);
    EXPECT_EQ(reassembled, request);
  }
}

TEST(Binwire, ResponseBuildersAgreeAcrossCodecs) {
  ServiceResult result;
  result.status = ServiceResult::Status::kAdmitted;
  result.rate = 2.25;
  result.availability = 0.987654321;
  result.paths = 3;
  result.latency_us = 1234.5;
  result.timeline.trace_id = 0x123456789abcdefULL;
  result.timeline.queue_us = 10.5;
  result.timeline.batch_us = 0.25;
  result.timeline.apply_us = 3;
  result.timeline.solve_us = 900.125;
  result.timeline.reply_us = 1.0;
  const std::string body =
      "# TYPE sparcle_x_total counter\nsparcle_x_total 7\n\"quoted\"\n";
  const std::vector<Fields> responses = {
      wire::result_fields(result),
      wire::metrics_fields(body),
      wire::error_fields("bad thing: \"details\" at offset 7"),
  };
  for (const Fields& fields : responses) {
    EXPECT_EQ(wire::parse_line(wire::to_line(fields)), fields);
    const std::string frame =
        binwire::encode(binwire::FrameType::kReply, fields);
    EXPECT_EQ(binwire::decode(frame).fields, fields);
  }
}

// ---------------------------------------------------------------------------
// Codec: malformed input

TEST(Binwire, TruncatedFramesReadAsPartial) {
  const std::string frame = binwire::encode(
      binwire::FrameType::kSubmit, Fields{{"app", "app a be 1\nend"}});
  for (std::size_t len = 0; len < frame.size(); ++len)
    EXPECT_EQ(binwire::frame_length(frame.substr(0, len)), 0u)
        << "prefix length " << len;
  EXPECT_EQ(binwire::frame_length(frame), frame.size());
}

TEST(Binwire, BadHeadersThrowTheRightCategory) {
  const auto category_of = [](const std::string& bytes,
                              std::size_t max = 1 << 20) {
    try {
      binwire::frame_length(bytes, max);
    } catch (const binwire::Error& e) {
      return e.category();
    }
    ADD_FAILURE() << "header unexpectedly accepted";
    return binwire::ErrorCategory::kMalformed;
  };
  std::string good = binwire::encode(binwire::FrameType::kQuery, Fields{});

  std::string bad_magic = good;
  bad_magic[0] = 'x';
  EXPECT_EQ(category_of(bad_magic), binwire::ErrorCategory::kBadMagic);

  std::string bad_version = good;
  bad_version[1] = 2;
  EXPECT_EQ(category_of(bad_version), binwire::ErrorCategory::kBadVersion);

  std::string bad_flags = good;
  bad_flags[3] = 1;
  EXPECT_EQ(category_of(bad_flags), binwire::ErrorCategory::kMalformed);

  // Declared payload larger than the cap is rejected from the header
  // alone — before any payload bytes arrive.
  std::string oversized = good.substr(0, binwire::kHeaderBytes);
  oversized[4] = static_cast<char>(0xFF);
  oversized[5] = static_cast<char>(0xFF);
  oversized[6] = static_cast<char>(0xFF);
  oversized[7] = static_cast<char>(0x7F);
  EXPECT_EQ(category_of(oversized), binwire::ErrorCategory::kOversized);
  EXPECT_EQ(category_of(good, 1), binwire::ErrorCategory::kOversized);
}

TEST(Binwire, MalformedPayloadsNeverEscapeTheErrorType) {
  // Fuzz-style sweep: every single-byte mutation and every truncation of
  // a valid frame either decodes cleanly or throws binwire::Error — no
  // other exception, no crash, no out-of-bounds read.
  const std::string frame = binwire::encode_request(
      Fields{{"verb", "submit"},
             {"app", "app a be 1\nend"},
             {"trace_id", "123456789"},
             {"rate", "2.5"},
             {"flag", "true"}});
  const auto probe = [](const std::string& bytes) {
    try {
      const std::size_t len = binwire::frame_length(bytes);
      if (len != 0 && len <= bytes.size())
        binwire::decode(bytes.substr(0, len));
    } catch (const binwire::Error&) {
      // expected for most mutations
    }
  };
  for (std::size_t i = 0; i < frame.size(); ++i) {
    for (const unsigned delta : {1u, 0x80u, 0xFFu}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(
          static_cast<unsigned char>(mutated[i]) ^ delta);
      probe(mutated);
    }
  }
  for (std::size_t len = 0; len <= frame.size(); ++len)
    probe(frame.substr(0, len));
  // Deterministic garbage that starts with the magic byte.
  std::string garbage = "\xb5";
  std::uint32_t x = 0x12345678;
  for (int i = 0; i < 4096; ++i) {
    x = x * 1664525u + 1013904223u;
    garbage += static_cast<char>(x >> 24);
  }
  probe(garbage);
}

// ---------------------------------------------------------------------------
// Event server: sockets, both codecs

TEST(EventServerWire, BinaryClientRoundTrips) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);
  server.start();
  service::TcpClient client("127.0.0.1", server.port(), Codec::kBinary);

  auto summary = client.query();
  EXPECT_EQ(summary.at("status"), "ok");
  EXPECT_EQ(summary.at("apps"), "0");

  const std::string block = workload::write_app_text(
      make_app("bin_app", QoeSpec::best_effort(1.5)), svc.network());
  auto submitted = client.submit_app_text(block);
  EXPECT_EQ(submitted.at("status"), "admitted") << block;
  EXPECT_NE(submitted.find("trace_id"), submitted.end());

  auto view = client.query("bin_app");
  EXPECT_EQ(view.at("status"), "ok");
  EXPECT_EQ(view.at("class"), "be");
  EXPECT_EQ(view.at("priority"), "1.5");

  EXPECT_EQ(client.remove("bin_app").at("status"), "removed");
  EXPECT_EQ(client.query("bin_app").at("status"), "not_found");
  EXPECT_EQ(client.drain().at("apps"), "0");

  auto health = client.call(Fields{{"verb", "stats"}});
  EXPECT_EQ(health.at("status"), "ok");
  auto metrics = client.call(Fields{{"verb", "metrics"}});
  EXPECT_NE(metrics.at("body").find("sparcle_"), std::string::npos);

  server.stop();
}

TEST(EventServerWire, JsonAndBinaryClientsAgreeOnOneServer) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);
  server.start();
  service::TcpClient json("127.0.0.1", server.port(), Codec::kJson);
  service::TcpClient binary("127.0.0.1", server.port(), Codec::kBinary);

  EXPECT_EQ(json.query(), binary.query());

  const std::string block = workload::write_app_text(
      make_app("shared", QoeSpec::best_effort(2.0)), svc.network());
  EXPECT_EQ(json.submit_app_text(block).at("status"), "admitted");
  // The binary client observes the JSON client's admission and vice
  // versa: one server, one service, two codecs.
  EXPECT_EQ(binary.query("shared").at("status"), "ok");
  EXPECT_EQ(binary.remove("shared").at("status"), "removed");
  EXPECT_EQ(json.query("shared").at("status"), "not_found");
  server.stop();
}

TEST(EventServerWire, MixedCodecSessionsRunConcurrently) {
  SchedulerService svc(make_two_relay_net(100.0));
  service::EventServer server(svc);
  server.start();
  const std::uint16_t port = server.port();
  const Network& net = svc.network();

  constexpr int kThreads = 4;
  constexpr int kAppsPerThread = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Codec codec = (t % 2 == 0) ? Codec::kJson : Codec::kBinary;
      try {
        service::TcpClient client("127.0.0.1", port, codec);
        for (int i = 0; i < kAppsPerThread; ++i) {
          const std::string name =
              "mix_" + std::to_string(t) + "_" + std::to_string(i);
          const std::string block = workload::write_app_text(
              make_app(name, QoeSpec::best_effort(1.0)), net);
          const auto submitted = client.submit_app_text(block);
          if (submitted.at("status") != "admitted") ++failures;
          if (client.query(name).at("status") != "ok") ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  service::TcpClient client("127.0.0.1", port, Codec::kBinary);
  EXPECT_EQ(client.drain().at("apps"),
            std::to_string(kThreads * kAppsPerThread));
  server.stop();

  // The socket-layer instruments observed all of it.
  const obs::MetricsSnapshot snap = svc.registry().snapshot();
  EXPECT_GE(snap.counter_or("service.net.accepted"),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_GT(snap.counter_or("service.net.frames.in"), 0u);
  EXPECT_GT(snap.counter_or("service.net.frames.out"), 0u);
  EXPECT_GT(snap.counter_or("service.net.bytes.in"), 0u);
  EXPECT_GT(snap.counter_or("service.net.bytes.out"), 0u);
  EXPECT_GE(snap.counter_or("service.net.codec.json"), 2u);
  EXPECT_GE(snap.counter_or("service.net.codec.binary"), 2u);
}

TEST(EventServerWire, PartialFramesReassembleAndPipelinedFramesAllAnswer) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);
  server.start();
  const int fd = connect_to(server.port());

  // Dribble one query frame a few bytes at a time.
  const std::string frame = binwire::encode_request(Fields{{"verb", "query"}});
  for (std::size_t off = 0; off < frame.size(); off += 3) {
    send_raw(fd, frame.substr(off, 3));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string buffer;
  binwire::Frame reply = recv_frame(fd, buffer);
  EXPECT_EQ(reply.type, binwire::FrameType::kReply);
  EXPECT_EQ(reply.fields.at("status"), "ok");

  // Two pipelined frames in one send: two replies, in order.
  const std::string stats = binwire::encode_request(Fields{{"verb", "stats"}});
  send_raw(fd, frame + stats);
  binwire::Frame first = recv_frame(fd, buffer);
  binwire::Frame second = recv_frame(fd, buffer);
  EXPECT_NE(first.fields.find("apps"), first.fields.end());
  EXPECT_NE(second.fields.find("slo_state"), second.fields.end());

  ::close(fd);
  server.stop();
}

TEST(EventServerWire, OversizedJsonLineGetsStructuredReject) {
  obs::DecisionLog decisions;
  obs::Observability sinks;
  sinks.decisions = &decisions;
  obs::install(sinks);

  SchedulerService svc(make_two_relay_net());
  service::EventServerOptions options;
  options.max_frame_bytes = 1024;
  service::EventServer server(svc, options);
  server.start();

  const int fd = connect_to(server.port());
  send_raw(fd, std::string(5000, 'x'));  // no newline, over the cap
  std::string buffer;
  const Fields reply = wire::parse_line(recv_line(fd, buffer));
  EXPECT_EQ(reply.at("status"), "error");
  EXPECT_EQ(reply.at("category"), "oversized");
  EXPECT_NE(reply.at("reason").find("1024"), std::string::npos);
  EXPECT_TRUE(recv_eof(fd));  // reject answered, then closed — not dropped
  ::close(fd);
  server.stop();
  obs::uninstall();

  EXPECT_GE(svc.registry().snapshot().counter_or("service.net.wire_rejects"),
            1u);
  bool logged = false;
  for (const obs::Decision& d : decisions.snapshot())
    if (d.kind == obs::DecisionKind::kWireReject) logged = true;
  EXPECT_TRUE(logged) << "oversized line should land in the decision log";
}

TEST(EventServerWire, OversizedBinaryFrameGetsStructuredReject) {
  SchedulerService svc(make_two_relay_net());
  service::EventServerOptions options;
  options.max_frame_bytes = 1024;
  service::EventServer server(svc, options);
  server.start();

  const int fd = connect_to(server.port());
  // Header declaring a 1 MiB payload against a 1 KiB cap: rejected from
  // the header alone, before any payload is buffered.
  std::string header(binwire::kHeaderBytes, '\0');
  header[0] = static_cast<char>(binwire::kMagic);
  header[1] = static_cast<char>(binwire::kVersion);
  header[2] = 0x03;  // query
  const std::uint32_t declared = 1u << 20;
  std::memcpy(&header[4], &declared, sizeof(declared));
  send_raw(fd, header);
  std::string buffer;
  const binwire::Frame reply = recv_frame(fd, buffer);
  EXPECT_EQ(reply.type, binwire::FrameType::kError);
  EXPECT_EQ(reply.fields.at("status"), "error");
  EXPECT_EQ(reply.fields.at("category"), "oversized");
  EXPECT_TRUE(recv_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(EventServerWire, BadVersionGetsErrorFrameAndClose) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);
  server.start();
  const int fd = connect_to(server.port());
  std::string frame = binwire::encode_request(Fields{{"verb", "query"}});
  frame[1] = 9;  // a future protocol version
  send_raw(fd, frame);
  std::string buffer;
  const binwire::Frame reply = recv_frame(fd, buffer);
  EXPECT_EQ(reply.type, binwire::FrameType::kError);
  EXPECT_EQ(reply.fields.at("category"), "bad_version");
  EXPECT_TRUE(recv_eof(fd));
  ::close(fd);
  server.stop();
}

TEST(EventServerWire, MalformedJsonLineKeepsTheConnectionUsable) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);
  server.start();
  const int fd = connect_to(server.port());
  std::string buffer;
  // NDJSON resynchronizes on the newline: a garbage line is answered
  // with an error and the next request still works.
  send_raw(fd, "this is not json\n");
  Fields reply = wire::parse_line(recv_line(fd, buffer));
  EXPECT_EQ(reply.at("status"), "error");
  send_raw(fd, "{\"verb\":\"query\"}\n");
  reply = wire::parse_line(recv_line(fd, buffer));
  EXPECT_EQ(reply.at("status"), "ok");
  ::close(fd);
  server.stop();
  EXPECT_GE(
      svc.registry().snapshot().counter_or("service.net.protocol_errors"),
      1u);
}

TEST(EventServerWire, IdleConnectionsAreSweptOut) {
  SchedulerService svc(make_two_relay_net());
  service::EventServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(100);
  service::EventServer server(svc, options);
  server.start();
  const int fd = connect_to(server.port());
  EXPECT_TRUE(recv_eof(fd)) << "idle connection should be closed by sweep";
  ::close(fd);
  server.stop();
  EXPECT_GE(svc.registry().snapshot().counter_or("service.net.idle_closed"),
            1u);
}

}  // namespace
}  // namespace sparcle
