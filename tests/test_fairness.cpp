#include "core/fairness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sparcle {
namespace {

/// Two apps, one shared link of capacity C, unit loads: the weighted-PF
/// closed form is x_i = P_i / ΣP * C.
TEST(Fairness, SingleLinkClosedForm) {
  PfProblem p;
  p.capacity = {30.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 1.0}};
  p.columns[1].entries = {{0, 1.0}};
  p.var_app = {0, 1};
  p.app_priority = {2.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.app_rate[0], 20.0, 1e-3);
  EXPECT_NEAR(s.app_rate[1], 10.0, 1e-3);
  EXPECT_LE(s.max_violation, 1e-9);
}

TEST(Fairness, SingleLinkHeterogeneousLoads) {
  // Loads R_1 = 2, R_2 = 1 on one capacity-12 element with equal
  // priorities: KKT gives x_i = P_i / (λ R_i), λ from 2x1 + x2 = 12
  // -> 1/λ + 1/λ = 12 -> λ = 1/6: x1 = 3, x2 = 6.
  PfProblem p;
  p.capacity = {12.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 2.0}};
  p.columns[1].entries = {{0, 1.0}};
  p.var_app = {0, 1};
  p.app_priority = {1.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.app_rate[0], 3.0, 1e-3);
  EXPECT_NEAR(s.app_rate[1], 6.0, 1e-3);
}

TEST(Fairness, IndependentAppsSaturateTheirOwnConstraints) {
  PfProblem p;
  p.capacity = {10.0, 40.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 1.0}};
  p.columns[1].entries = {{1, 2.0}};
  p.var_app = {0, 1};
  p.app_priority = {1.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.app_rate[0], 10.0, 1e-3);
  EXPECT_NEAR(s.app_rate[1], 20.0, 1e-3);
}

TEST(Fairness, KktStationarityHolds) {
  // Random-ish 3-app, 4-constraint problem: check P_i / x_i == Σ λ_e R_ei
  // for every variable at the optimum.
  PfProblem p;
  p.capacity = {20.0, 15.0, 25.0, 30.0};
  p.columns.resize(3);
  p.columns[0].entries = {{0, 1.0}, {1, 2.0}};
  p.columns[1].entries = {{1, 1.0}, {2, 3.0}};
  p.columns[2].entries = {{0, 2.0}, {3, 1.0}};
  p.var_app = {0, 1, 2};
  p.app_priority = {1.0, 2.0, 3.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  for (std::size_t v = 0; v < 3; ++v) {
    double price = 0;
    for (const auto& [row, coeff] : p.columns[v].entries)
      price += s.dual[row] * coeff;
    const double marginal = p.app_priority[v] / s.app_rate[v];
    EXPECT_NEAR(marginal, price, 0.02 * marginal)
        << "stationarity violated for variable " << v;
  }
}

TEST(Fairness, UtilityMatchesPfUtilityHelper) {
  PfProblem p;
  p.capacity = {30.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 1.0}};
  p.columns[1].entries = {{0, 1.0}};
  p.var_app = {0, 1};
  p.app_priority = {2.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  EXPECT_NEAR(s.utility, pf_utility(p, s.path_rate), 1e-9);
  EXPECT_NEAR(s.utility, 2.0 * std::log(s.app_rate[0]) +
                             std::log(s.app_rate[1]),
              1e-9);
}

TEST(Fairness, MultipathAggregatesAcrossPaths) {
  // One app with two disjoint paths (capacities 5 and 7) and another app
  // sharing nothing: app 0 should get 12 total.
  PfProblem p;
  p.capacity = {5.0, 7.0, 9.0};
  p.columns.resize(3);
  p.columns[0].entries = {{0, 1.0}};
  p.columns[1].entries = {{1, 1.0}};
  p.columns[2].entries = {{2, 1.0}};
  p.var_app = {0, 0, 1};
  p.app_priority = {1.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.app_rate[0], 12.0, 1e-2);
  EXPECT_NEAR(s.app_rate[1], 9.0, 1e-2);
}

TEST(Fairness, MultipathSharedBottleneckSplitsArbitrarilyButSumsRight) {
  // Two paths of one app over the same link: only the sum is determined.
  PfProblem p;
  p.capacity = {10.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 1.0}};
  p.columns[1].entries = {{0, 1.0}};
  p.var_app = {0, 0};
  p.app_priority = {1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_NEAR(s.app_rate[0], 10.0, 1e-3);
  EXPECT_GT(s.path_rate[0], 0.0);
  EXPECT_GT(s.path_rate[1], 0.0);
}

TEST(Fairness, PriorityScalesAllocationOnSharedBottleneck) {
  for (double ratio : {1.0, 2.0, 5.0, 10.0}) {
    PfProblem p;
    p.capacity = {100.0};
    p.columns.resize(2);
    p.columns[0].entries = {{0, 1.0}};
    p.columns[1].entries = {{0, 1.0}};
    p.var_app = {0, 1};
    p.app_priority = {ratio, 1.0};
    const PfSolution s = solve_weighted_pf(p);
    ASSERT_TRUE(s.converged);
    EXPECT_NEAR(s.app_rate[0] / s.app_rate[1], ratio, 0.02 * ratio)
        << "priority ratio " << ratio;
  }
}

TEST(Fairness, LargeCapacityUnitsAreHandled) {
  // Bits-per-second scale (1e8) with megacycle loads: the internal scaling
  // must keep the solve stable.
  PfProblem p;
  p.capacity = {1e8, 15200.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 2.48e7}, {1, 9880.0}};
  p.columns[1].entries = {{0, 1.456e6}, {1, 12800.0}};
  p.var_app = {0, 1};
  p.app_priority = {1.0, 1.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  EXPECT_LE(s.max_violation, 1e-3);
  EXPECT_GT(s.app_rate[0], 0.0);
  EXPECT_GT(s.app_rate[1], 0.0);
}

TEST(Fairness, RejectsMalformedProblems) {
  PfProblem empty;
  EXPECT_THROW(solve_weighted_pf(empty), std::invalid_argument);

  PfProblem no_vars;
  no_vars.capacity = {1.0};
  no_vars.app_priority = {1.0};
  EXPECT_THROW(solve_weighted_pf(no_vars), std::invalid_argument);

  PfProblem bad_priority;
  bad_priority.capacity = {1.0};
  bad_priority.columns.resize(1);
  bad_priority.columns[0].entries = {{0, 1.0}};
  bad_priority.var_app = {0};
  bad_priority.app_priority = {0.0};
  EXPECT_THROW(solve_weighted_pf(bad_priority), std::invalid_argument);

  PfProblem zero_cap;
  zero_cap.capacity = {0.0};
  zero_cap.columns.resize(1);
  zero_cap.columns[0].entries = {{0, 1.0}};
  zero_cap.var_app = {0};
  zero_cap.app_priority = {1.0};
  EXPECT_THROW(solve_weighted_pf(zero_cap), std::invalid_argument);
}

TEST(Fairness, PfUtilityIsMinusInfinityForZeroRateApp) {
  PfProblem p;
  p.capacity = {1.0};
  p.columns.resize(1);
  p.columns[0].entries = {{0, 1.0}};
  p.var_app = {0};
  p.app_priority = {1.0};
  EXPECT_EQ(pf_utility(p, {0.0}), -std::numeric_limits<double>::infinity());
}

TEST(Fairness, SolutionIsOptimalAgainstPerturbations) {
  // Local optimality: random feasible perturbations never improve utility.
  PfProblem p;
  p.capacity = {20.0, 15.0};
  p.columns.resize(2);
  p.columns[0].entries = {{0, 1.0}, {1, 1.0}};
  p.columns[1].entries = {{1, 1.0}};
  p.var_app = {0, 1};
  p.app_priority = {1.0, 3.0};
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  const double u = pf_utility(p, s.path_rate);
  for (double d1 : {-0.5, -0.1, 0.1}) {
    for (double d2 : {-0.5, -0.1, 0.1}) {
      std::vector<double> x = s.path_rate;
      x[0] += d1;
      x[1] += d2;
      if (x[0] <= 0 || x[1] <= 0) continue;
      if (x[0] > 20.0 || x[0] + x[1] > 15.0) continue;  // infeasible
      EXPECT_LE(pf_utility(p, x), u + 1e-6);
    }
  }
}

}  // namespace
}  // namespace sparcle
