#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "policy/policy.hpp"
#include "soak/soak.hpp"
#include "testutil.hpp"

// Tier-1 smoke soak (docs/policies.md): every adversarial scenario
// generator x every scheduling policy runs at least one short cell —
// the full invariant battery at sampled epochs included — inside the
// ordinary ctest budget.  The nightly tools/soak.sh runs the same
// matrix at six orders of magnitude more arrivals; this test exists so
// a policy or generator regression fails in CI, not at 3am.

namespace sparcle {
namespace {

TEST(SoakSmoke, EveryScenarioPolicyCellClean) {
  const std::size_t arrivals =
      testutil::env_size("SPARCLE_SMOKE_ARRIVALS", 120);
  const std::uint64_t seed = testutil::test_seed() + 0x50a4;
  for (const std::string& scenario : soak::tournament_scenarios()) {
    for (const std::string& policy : policy::policy_names()) {
      SCOPED_TRACE(scenario + " x " + policy + testutil::seed_message(seed));
      soak::SoakOptions options =
          soak::cell_options(scenario, policy, arrivals, seed);
      options.invariant_epochs = 2;
      const soak::SoakResult result = soak::run_soak(options);

      for (const std::string& violation : result.violations)
        ADD_FAILURE() << violation;
      EXPECT_EQ(result.arrivals, arrivals);
      // Conservation: every arrival is accounted for exactly once.
      EXPECT_EQ(result.admitted + result.rejected + result.reneged +
                    result.queue_full,
                result.arrivals);
      EXPECT_GE(result.epochs.size(), 2u);
      EXPECT_GT(result.admitted, 0u);
      if (scenario == "regional_outage") {
        EXPECT_GT(result.churn_events, 0u);
        EXPECT_EQ(result.repairs, result.churn_events);
      }
    }
  }
}

// The same cell against a federated site (docs/federation.md): the
// soak's event loop drives a FederatedService, so shard-local arrivals
// exercise the per-shard pipelines and the locality tail exercises the
// two-phase reserve/commit path; every invariant epoch runs the
// federation conservation check.  The digest check pins determinism —
// routing through shards must not depend on thread interleaving.
TEST(SoakSmoke, FederatedCellCleanAndDeterministic) {
  const std::size_t arrivals =
      testutil::env_size("SPARCLE_SMOKE_ARRIVALS", 120);
  const std::uint64_t seed = testutil::test_seed() + 0xfed5;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("steady x default, shards=" + std::to_string(shards) +
                 testutil::seed_message(seed));
    soak::SoakOptions options =
        soak::cell_options("steady", "default", arrivals, seed);
    options.invariant_epochs = 2;
    options.federated_shards = shards;
    const soak::SoakResult result = soak::run_soak(options);

    for (const std::string& violation : result.violations)
      ADD_FAILURE() << violation;
    EXPECT_EQ(result.admitted + result.rejected + result.reneged +
                  result.queue_full,
              result.arrivals);
    EXPECT_GT(result.admitted, 0u);
    EXPECT_GE(result.epochs.size(), 2u);

    if (shards == 2) {
      const soak::SoakResult again = soak::run_soak(options);
      EXPECT_EQ(result.decision_digest, again.decision_digest);
      EXPECT_EQ(result.admitted, again.admitted);
    }
  }
}

}  // namespace
}  // namespace sparcle
