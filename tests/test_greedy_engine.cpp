#include "core/greedy_engine.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace sparcle {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Fixture {
  Network net{ResourceSchema::cpu_only()};
  TaskGraph graph{ResourceSchema::cpu_only()};
  AssignmentProblem problem;

  Fixture() {
    // Two field nodes and a big one, in a line: 0 -(10)- 1 -(100)- 2.
    net.add_ncp("n0", ResourceVector::scalar(10));
    net.add_ncp("n1", ResourceVector::scalar(20));
    net.add_ncp("n2", ResourceVector::scalar(100));
    net.add_link("l01", 0, 1, 10);
    net.add_link("l12", 1, 2, 100);

    const CtId s = graph.add_ct("s", ResourceVector::scalar(0));
    const CtId a = graph.add_ct("a", ResourceVector::scalar(5));
    const CtId t = graph.add_ct("t", ResourceVector::scalar(0));
    graph.add_tt("sa", 2, s, a);
    graph.add_tt("at", 1, a, t);
    graph.finalize();

    problem.net = &net;
    problem.graph = &graph;
    problem.capacities = CapacitySnapshot(net);
    problem.pinned = {{s, 0}, {t, 0}};
  }
};

TEST(GreedyEngine, CommitPinsPlacesPinnedCts) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit_pins();
  EXPECT_TRUE(e.placed(0));
  EXPECT_TRUE(e.placed(2));
  EXPECT_FALSE(e.placed(1));
  EXPECT_EQ(e.placed_count(), 2u);
  EXPECT_EQ(e.host(0), 0);
}

TEST(GreedyEngine, GammaNodeTermOnly) {
  Fixture f;
  GreedyEngine e(f.problem);
  // Nothing placed: γ(a, j) is the pure node term C_j / a = C_j / 5.
  EXPECT_DOUBLE_EQ(e.gamma(1, 0), 10.0 / 5.0);
  EXPECT_DOUBLE_EQ(e.gamma(1, 2), 100.0 / 5.0);
}

TEST(GreedyEngine, GammaIncludesLinkTermsTowardsPlacedCts) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit_pins();  // s and t on n0
  // Placing a on n2: node term 100/5 = 20.  Towards s (on n0) the probe TT
  // is "sa" (2 bits): width min(100/2, 10/2) = 5; towards t it is "at"
  // (1 bit): width min(100/1, 10/1) = 10.  γ = min(20, 5, 10) = 5.
  EXPECT_DOUBLE_EQ(e.gamma(1, 2), 5.0);
  // Placing a on n0 co-locates: pure node term 10/5 = 2.
  EXPECT_DOUBLE_EQ(e.gamma(1, 0), 2.0);
}

TEST(GreedyEngine, GammaCountsExistingNodeLoad) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit(1, 1);  // a (5 units) on n1
  // A second CT of the same size on n1 would see 20 / (5 + 5)... use γ of
  // CT a again is illegal (placed); instead check through a fresh engine.
  GreedyEngine e2(f.problem);
  e2.commit(0, 1);  // put the source somewhere busy? source has 0 req.
  // Node term for a on n1 with zero existing load: 20/5.
  EXPECT_DOUBLE_EQ(e2.gamma(1, 1), 4.0);
}

TEST(GreedyEngine, BestHostIsArgmaxGamma) {
  Fixture f;
  GreedyEngine e(f.problem);
  double g = 0;
  const NcpId j = e.best_host(1, &g);
  EXPECT_EQ(j, 2);  // biggest node before any pins
  EXPECT_DOUBLE_EQ(g, 20.0);
}

TEST(GreedyEngine, CommitRoutesTtsToPlacedNeighbours) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit_pins();
  e.commit(1, 2);  // a on n2; both TTs must now be routed n0 <-> n2
  AssignmentResult r = std::move(e).finish();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.tt_route(0).size(), 2u);
  EXPECT_EQ(r.placement.tt_route(1).size(), 2u);
}

TEST(GreedyEngine, CoLocatedTtGetsEmptyRoute) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit_pins();
  e.commit(1, 0);
  AssignmentResult r = std::move(e).finish();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.placement.tt_route(0).empty());
  EXPECT_TRUE(r.placement.tt_route(1).empty());
  EXPECT_DOUBLE_EQ(r.rate, 2.0);  // n0 cpu: 10/5
}

TEST(GreedyEngine, LoadBookkeepingMatchesCommits) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit_pins();
  e.commit(1, 2);
  EXPECT_DOUBLE_EQ(e.load().ncp_load(2)[0], 5.0);
  // sa (2 bits) and at (1 bit) both cross l01 and l12.
  EXPECT_DOUBLE_EQ(e.load().link_load(0), 3.0);
  EXPECT_DOUBLE_EQ(e.load().link_load(1), 3.0);
}

TEST(GreedyEngine, DoubleCommitThrows) {
  Fixture f;
  GreedyEngine e(f.problem);
  e.commit(1, 0);
  EXPECT_THROW(e.commit(1, 1), std::logic_error);
}

TEST(GreedyEngine, CommitToUnknownNcpThrows) {
  Fixture f;
  GreedyEngine e(f.problem);
  EXPECT_THROW(e.commit(1, 9), std::invalid_argument);
}

TEST(GreedyEngine, GammaZeroWhenDisconnected) {
  // Two islands: the pinned source sits on an unreachable node.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(10));
  net.add_ncp("b", ResourceVector::scalar(10));
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId x = g.add_ct("x", ResourceVector::scalar(1));
  g.add_tt("sx", 1, s, x);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}};
  GreedyEngine e(p);
  e.commit_pins();
  EXPECT_DOUBLE_EQ(e.gamma(x, 1), 0.0);  // no link between the islands
  EXPECT_GT(e.gamma(x, 0), 0.0);         // co-location still works
}

TEST(GreedyEngine, ZeroRequirementCtHasInfiniteNodeTerm) {
  Fixture f;
  GreedyEngine e(f.problem);
  EXPECT_EQ(e.gamma(0, 1), kInf);  // source CT, nothing placed yet
}

}  // namespace
}  // namespace sparcle
