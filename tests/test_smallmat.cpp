#include "core/smallmat.hpp"

#include <gtest/gtest.h>

#include "workload/rng.hpp"

namespace sparcle {
namespace {

TEST(Matrix, ShapeAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(CholeskySolve, IdentitySystem) {
  Matrix a(3, 3, 0.0);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> x;
  ASSERT_TRUE(cholesky_solve(a, {1.0, 2.0, 3.0}, x));
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(CholeskySolve, KnownSpdSystem) {
  // A = [[4, 2], [2, 3]], b = [10, 8] -> x = [7/4, 3/2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  std::vector<double> x;
  ASSERT_TRUE(cholesky_solve(a, {10.0, 8.0}, x));
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskySolve, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3 and -1
  std::vector<double> x;
  EXPECT_FALSE(cholesky_solve(a, {1.0, 1.0}, x));
}

TEST(CholeskySolve, ShapeMismatchThrows) {
  Matrix a(2, 3);
  std::vector<double> x;
  EXPECT_THROW(cholesky_solve(a, {1.0, 2.0}, x), std::invalid_argument);
  Matrix b(2, 2, 1.0);
  EXPECT_THROW(cholesky_solve(b, {1.0}, x), std::invalid_argument);
}

TEST(CholeskySolve, RandomSpdRoundTrip) {
  // Build A = B^T B + I (SPD), pick x*, solve A x = A x*, compare.
  Rng rng(5);
  const std::size_t n = 6;
  for (int trial = 0; trial < 20; ++trial) {
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1, 1);
    Matrix a(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) a(i, j) += b(k, i) * b(k, j);
        if (i == j) a(i, j) += 1.0;
      }
    std::vector<double> x_star(n), rhs(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_star[i] = rng.uniform(-5, 5);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) rhs[i] += a(i, j) * x_star[j];
    std::vector<double> x;
    ASSERT_TRUE(cholesky_solve(a, rhs, x));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_star[i], 1e-8);
  }
}

}  // namespace
}  // namespace sparcle
