#include "model/network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "model/capacity.hpp"
#include "model/placement.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

Network make_triangle() {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(10), 0.1);
  net.add_ncp("b", ResourceVector::scalar(20), 0.2);
  net.add_ncp("c", ResourceVector::scalar(30));
  net.add_link("ab", 0, 1, 100, 0.05);
  net.add_link("bc", 1, 2, 200);
  net.add_link("ca", 2, 0, 300);
  return net;
}

TEST(Network, CountsAndAccessors) {
  const Network net = make_triangle();
  EXPECT_EQ(net.ncp_count(), 3u);
  EXPECT_EQ(net.link_count(), 3u);
  EXPECT_EQ(net.ncp(1).name, "b");
  EXPECT_DOUBLE_EQ(net.link(1).bandwidth, 200.0);
}

TEST(Network, IncidentLinks) {
  const Network net = make_triangle();
  EXPECT_EQ(net.incident_links(0).size(), 2u);  // ab and ca
  EXPECT_EQ(net.incident_links(1).size(), 2u);
}

TEST(Network, IncidentLinksCsrStaysCoherentAcrossMutations) {
  // The flat CSR adjacency is rebuilt lazily; interleaving reads with
  // add_ncp/add_link must always observe the up-to-date, ascending-id
  // incident lists.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(1));
  net.add_ncp("b", ResourceVector::scalar(1));
  net.add_link("ab", 0, 1, 10);
  ASSERT_EQ(net.incident_links(0).size(), 1u);
  EXPECT_EQ(net.incident_links(0)[0], 0);

  net.add_ncp("c", ResourceVector::scalar(1));
  EXPECT_TRUE(net.incident_links(2).empty());  // new NCP visible, degree 0

  net.add_link("bc", 1, 2, 20);
  net.add_link("ca", 2, 0, 30);
  const auto at0 = net.incident_links(0);
  ASSERT_EQ(at0.size(), 2u);
  EXPECT_EQ(at0[0], 0);  // ascending link-id order within each NCP
  EXPECT_EQ(at0[1], 2);
  const auto at2 = net.incident_links(2);
  ASSERT_EQ(at2.size(), 2u);
  EXPECT_EQ(at2[0], 1);
  EXPECT_EQ(at2[1], 2);
  EXPECT_THROW(net.incident_links(5), std::out_of_range);
}

TEST(Network, OtherEnd) {
  const Network net = make_triangle();
  EXPECT_EQ(net.other_end(0, 0), 1);
  EXPECT_EQ(net.other_end(0, 1), 0);
  EXPECT_THROW(net.other_end(0, 2), std::invalid_argument);
}

TEST(Network, ConnectedDetectsPartition) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(1));
  net.add_ncp("b", ResourceVector::scalar(1));
  net.add_ncp("c", ResourceVector::scalar(1));
  net.add_link("ab", 0, 1, 10);
  EXPECT_FALSE(net.connected());
  net.add_link("bc", 1, 2, 10);
  EXPECT_TRUE(net.connected());
}

TEST(Network, FailProbByElementKey) {
  const Network net = make_triangle();
  EXPECT_DOUBLE_EQ(net.fail_prob(ElementKey::ncp(0)), 0.1);
  EXPECT_DOUBLE_EQ(net.fail_prob(ElementKey::link(0)), 0.05);
  EXPECT_DOUBLE_EQ(net.fail_prob(ElementKey::ncp(2)), 0.0);
}

TEST(Network, RejectsBadInputs) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("a", ResourceVector::scalar(1));
  EXPECT_THROW(net.add_ncp("bad", ResourceVector{1.0, 2.0}),
               std::invalid_argument);  // schema mismatch
  EXPECT_THROW(net.add_ncp("bad", ResourceVector::scalar(1), 1.5),
               std::invalid_argument);  // failure probability
  EXPECT_THROW(net.add_link("self", 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(net.add_link("dangling", 0, 9, 10), std::invalid_argument);
  EXPECT_THROW(net.add_link("zero-bw", 0, 0, 0), std::invalid_argument);
}

TEST(ElementKey, OrderingAndHash) {
  const ElementKey a = ElementKey::ncp(1);
  const ElementKey b = ElementKey::link(1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, ElementKey::ncp(1));
  EXPECT_NE(std::hash<ElementKey>{}(a), std::hash<ElementKey>{}(b));
}

TEST(CapacitySnapshot, StartsAtFullCapacity) {
  const Network net = make_triangle();
  const CapacitySnapshot cap(net);
  EXPECT_DOUBLE_EQ(cap.ncp(0)[0], 10.0);
  EXPECT_DOUBLE_EQ(cap.link(2), 300.0);
  EXPECT_DOUBLE_EQ(cap.element(ElementKey::ncp(1), 0), 20.0);
  EXPECT_DOUBLE_EQ(cap.element(ElementKey::link(1), 0), 200.0);
}

TEST(CapacitySnapshot, ScaleElements) {
  const Network net = make_triangle();
  CapacitySnapshot cap(net);
  cap.scale_elements({ElementKey::ncp(0), ElementKey::link(1)}, 0.5);
  EXPECT_DOUBLE_EQ(cap.ncp(0)[0], 5.0);
  EXPECT_DOUBLE_EQ(cap.link(1), 100.0);
  EXPECT_DOUBLE_EQ(cap.ncp(1)[0], 20.0);  // untouched
}

TEST(CapacitySnapshot, SubtractScaledClampsAtZero) {
  const Network net = make_triangle();
  CapacitySnapshot cap(net);
  LoadMap load = LoadMap::zeros(net);
  // Put 3 cpu units of per-unit load on NCP 0 and 50 bits on link 0.
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId x = g.add_ct("x", ResourceVector::scalar(3));
  const CtId y = g.add_ct("y", ResourceVector::scalar(1));
  g.add_tt("t", 50, x, y);
  g.finalize();
  load.add_ct(g, x, 0);
  load.add_tt(g, 0, 0);

  cap.subtract_scaled(load, 2.0);  // rate 2: 6 cpu, 100 bits
  EXPECT_DOUBLE_EQ(cap.ncp(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(cap.link(0), 0.0);  // 100 - 100
  cap.subtract_scaled(load, 10.0);     // would go negative: clamps
  EXPECT_DOUBLE_EQ(cap.ncp(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(cap.link(0), 0.0);
}

TEST(Topologies, StarShape) {
  Rng rng(3);
  const auto gen = workload::star_network(8, rng, workload::NetRanges{});
  EXPECT_EQ(gen.net.ncp_count(), 8u);
  EXPECT_EQ(gen.net.link_count(), 7u);
  EXPECT_TRUE(gen.net.connected());
  // Every link touches the hub.
  for (LinkId l = 0; l < 7; ++l) {
    const Link& lk = gen.net.link(l);
    EXPECT_TRUE(lk.a == 0 || lk.b == 0);
  }
  EXPECT_NE(gen.source, gen.sink);
}

TEST(Topologies, LinearShape) {
  Rng rng(3);
  const auto gen = workload::linear_network(5, rng, workload::NetRanges{});
  EXPECT_EQ(gen.net.link_count(), 4u);
  EXPECT_TRUE(gen.net.connected());
  EXPECT_EQ(gen.source, 0);
  EXPECT_EQ(gen.sink, 4);
}

TEST(Topologies, FullShape) {
  Rng rng(3);
  const auto gen = workload::full_network(6, rng, workload::NetRanges{});
  EXPECT_EQ(gen.net.link_count(), 15u);  // C(6,2)
  EXPECT_TRUE(gen.net.connected());
}

TEST(Topologies, CapacitiesWithinRanges) {
  Rng rng(11);
  workload::NetRanges r;
  r.ncp_min = 10;
  r.ncp_max = 20;
  r.bw_min = 100;
  r.bw_max = 200;
  const auto gen = workload::star_network(6, rng, r);
  for (NcpId j = 0; j < 6; ++j) {
    EXPECT_GE(gen.net.ncp(j).capacity[0], 10.0);
    EXPECT_LE(gen.net.ncp(j).capacity[0], 20.0);
  }
  for (LinkId l = 0; l < 5; ++l) {
    EXPECT_GE(gen.net.link(l).bandwidth, 100.0);
    EXPECT_LE(gen.net.link(l).bandwidth, 200.0);
  }
}

TEST(Testbed, MatchesTableOne) {
  const auto tb = workload::testbed_network(10.0);
  EXPECT_EQ(tb.net.ncp_count(), 7u);  // 6 field + cloud
  EXPECT_EQ(tb.net.link_count(), 8u); // 7 field + cloud attachment
  EXPECT_DOUBLE_EQ(tb.net.ncp(tb.cloud).capacity[0], 15200.0);
  for (NcpId j = 0; j < 6; ++j)
    EXPECT_DOUBLE_EQ(tb.net.ncp(j).capacity[0], 3000.0);
  // The cloud link is 100 Mbps; field links are 10 Mbps.
  bool found_cloud_link = false;
  for (LinkId l = 0; l < 8; ++l) {
    const Link& lk = tb.net.link(l);
    if (lk.a == tb.cloud || lk.b == tb.cloud) {
      EXPECT_DOUBLE_EQ(lk.bandwidth, 100e6);
      found_cloud_link = true;
    } else {
      EXPECT_DOUBLE_EQ(lk.bandwidth, 10e6);
    }
  }
  EXPECT_TRUE(found_cloud_link);
  EXPECT_TRUE(tb.net.connected());
}

}  // namespace
}  // namespace sparcle
