/// \file test_scenario_fuzz.cpp
/// Robustness of the scenario parser: random token soup and random
/// mutations of a valid scenario must either parse or throw
/// std::runtime_error with a line number — never crash, hang, or throw
/// anything else.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "workload/rng.hpp"
#include "testutil.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle {
namespace {

const char* kValid = R"(resources cpu
ncp a 100
ncp b 50 fail=0.1
link ab a b 1e6
dlink up a b 2e6 fail=0.02
app stream be 2 0.9
  ct src 0
  ct work 10
  ct dst 0
  tt raw 1000 src work
  tt out 10 work dst
  pin src a
  pin dst b
end
app g gr 1.5 0.8
  ct s 0
  ct t 1
  tt st 1 s t
  pin s a
  pin t b
end
)";

void expect_parse_or_runtime_error(const std::string& text) {
  try {
    const auto sf = workload::parse_scenario_text(text);
    (void)sf;
  } catch (const std::runtime_error& e) {
    // Every parse error carries the compiler-style "<source>:<line>:"
    // prefix (the default source name here).
    EXPECT_EQ(std::string(e.what()).rfind("<scenario>:", 0), 0u)
        << "error lacks a source:line prefix: " << e.what();
  }
  // Any other exception type escapes and fails the test.
}

TEST(ScenarioFuzz, ValidBaselineParses) {
  const auto sf = workload::parse_scenario_text(kValid);
  EXPECT_EQ(sf.apps.size(), 2u);
}

class ScenarioFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(testutil::test_seed() + GetParam());
  static const char* kTokens[] = {
      "resources", "cpu",  "memory", "ncp",  "link", "dlink", "app",
      "ct",        "tt",   "pin",    "end",  "be",   "gr",    "a",
      "b",         "x",    "1",      "0",    "-5",   "1e6",   "fail=0.1",
      "fail=2",    "#c",   "nan",    "10.5", "",     "stream"};
  std::ostringstream soup;
  const int lines = static_cast<int>(rng.uniform_int(1, 30));
  for (int l = 0; l < lines; ++l) {
    const int toks = static_cast<int>(rng.uniform_int(0, 6));
    for (int t = 0; t < toks; ++t)
      soup << kTokens[rng.uniform_int(0, std::size(kTokens) - 1)] << " ";
    soup << "\n";
  }
  expect_parse_or_runtime_error(soup.str());
}

TEST_P(ScenarioFuzz, MutatedValidScenarioNeverCrashes) {
  Rng rng(testutil::test_seed() + GetParam() + 1000);
  std::string text = kValid;
  const int mutations = static_cast<int>(rng.uniform_int(1, 8));
  for (int m = 0; m < mutations; ++m) {
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(text.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:  // flip a character
        text[pos] = static_cast<char>('a' + rng.uniform_int(0, 25));
        break;
      case 1:  // delete a span
        text.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 10)));
        break;
      default:  // duplicate a span
        text.insert(pos, text.substr(
                             pos, static_cast<std::size_t>(
                                      rng.uniform_int(1, 10))));
        break;
    }
  }
  expect_parse_or_runtime_error(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Range(1, 41));

}  // namespace
}  // namespace sparcle
