#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/exhaustive.hpp"
#include "check/fuzzer.hpp"
#include "check/invariants.hpp"
#include "check/oracles.hpp"
#include "core/sparcle_assigner.hpp"
#include "policy/policy.hpp"
#include "testutil.hpp"

// The invariant fuzz gate: seeded random scenarios through the scheduler
// pipeline + oracles (CI runs the fixed default; nightly raises
// SPARCLE_FUZZ_ITERS), plus a deterministic exhaustive-differential sweep
// over every enumerable small instance (all tiny tree topologies x task
// graph shapes x source/sink pin combinations).

namespace sparcle {
namespace {

TEST(InvariantsFuzz, SchedulerPipelineAndOraclesClean) {
  check::FuzzOptions options;
  options.seed = testutil::test_seed() + 0xf00d;
  options.iterations = testutil::env_size("SPARCLE_FUZZ_ITERS", 200);
  const char* dir = std::getenv("SPARCLE_FUZZ_REPRO_DIR");
  options.repro_dir = (dir && *dir) ? dir : ::testing::TempDir();

  const check::FuzzOutcome outcome = check::fuzz_scheduler(options);
  EXPECT_EQ(outcome.iterations_run, options.iterations);
  if (outcome.failure) {
    const check::FuzzFailure& f = *outcome.failure;
    FAIL() << "fuzz failure at iteration " << f.iteration << " (scenario seed "
           << f.scenario_seed << ") in phase " << f.phase << ":\n"
           << f.report.to_string() << "repro: "
           << (f.repro_path.empty() ? std::string("<not written>")
                                    : f.repro_path);
  }
}

// The policy axis: the same pipeline with a random scheduling-policy
// plugin per iteration (docs/policies.md).  The invariant battery must
// hold under ANY policy — plugins choose orderings, never feasibility —
// while the optimality oracles keep running the default algorithm.  A
// failure records the active policy in the report and in the repro's
// `# policy:` header.
TEST(InvariantsFuzz, PolicyAxisPipelineClean) {
  check::FuzzOptions options;
  options.seed = testutil::test_seed() + 0xbeef;
  options.iterations = testutil::env_size("SPARCLE_FUZZ_ITERS", 200) / 2;
  options.policies = policy::policy_names();
  const char* dir = std::getenv("SPARCLE_FUZZ_REPRO_DIR");
  options.repro_dir = (dir && *dir) ? dir : ::testing::TempDir();

  const check::FuzzOutcome outcome = check::fuzz_scheduler(options);
  EXPECT_EQ(outcome.iterations_run, options.iterations);
  if (outcome.failure) {
    const check::FuzzFailure& f = *outcome.failure;
    FAIL() << "fuzz failure at iteration " << f.iteration << " (scenario seed "
           << f.scenario_seed << ", policy "
           << (f.policy.empty() ? std::string("<legacy>") : f.policy)
           << ") in phase " << f.phase << ":\n"
           << f.report.to_string() << "repro: "
           << (f.repro_path.empty() ? std::string("<not written>")
                                    : f.repro_path);
  }
}

// ---------------------------------------------------------------------------
// Exhaustive differential grid over all enumerable small instances.

enum class Topology { kLinear, kStar };
enum class Shape { kChain2, kChain3, kChain4, kDiamond };

Network make_network(Topology topology, std::size_t n) {
  Network net(ResourceSchema::cpu_only());
  std::vector<NcpId> ncps;
  for (std::size_t j = 0; j < n; ++j)
    ncps.push_back(net.add_ncp("n" + std::to_string(j),
                               ResourceVector::scalar(6.0 + 1.0 * j)));
  for (std::size_t j = 1; j < n; ++j) {
    const NcpId from = topology == Topology::kLinear ? ncps[j - 1] : ncps[0];
    net.add_link("l" + std::to_string(j), from, ncps[j], 10.0 + 2.0 * j);
  }
  return net;
}

std::shared_ptr<TaskGraph> make_graph(Shape shape) {
  TaskGraph g(ResourceSchema::cpu_only());
  auto ct = [&](std::size_t i) {
    return g.add_ct("c" + std::to_string(i),
                    ResourceVector::scalar(1.0 + 0.5 * i));
  };
  auto tt = [&](std::size_t k, CtId a, CtId b) {
    g.add_tt("t" + std::to_string(k), 2.0 + 1.0 * k, a, b);
  };
  switch (shape) {
    case Shape::kChain2: {
      const CtId a = ct(0), b = ct(1);
      tt(0, a, b);
      break;
    }
    case Shape::kChain3: {
      const CtId a = ct(0), b = ct(1), c = ct(2);
      tt(0, a, b);
      tt(1, b, c);
      break;
    }
    case Shape::kChain4: {
      const CtId a = ct(0), b = ct(1), c = ct(2), d = ct(3);
      tt(0, a, b);
      tt(1, b, c);
      tt(2, c, d);
      break;
    }
    case Shape::kDiamond: {
      const CtId a = ct(0), b = ct(1), c = ct(2), d = ct(3);
      tt(0, a, b);
      tt(1, a, c);
      tt(2, b, d);
      tt(3, c, d);
      break;
    }
  }
  g.finalize();
  return std::make_shared<TaskGraph>(std::move(g));
}

TEST(InvariantsFuzz, ExhaustiveDifferentialGrid) {
  const SparcleAssigner sparcle_assigner;
  std::size_t instances = 0;
  for (Topology topology : {Topology::kLinear, Topology::kStar}) {
    for (std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
      const Network net = make_network(topology, n);
      ASSERT_TRUE(check::unique_route_topology(net));
      for (Shape shape :
           {Shape::kChain2, Shape::kChain3, Shape::kChain4, Shape::kDiamond}) {
        const std::shared_ptr<TaskGraph> graph = make_graph(shape);
        const CtId source = graph->sources().front();
        const CtId sink = graph->sinks().front();
        for (std::size_t src_pin = 0; src_pin < n; ++src_pin) {
          for (std::size_t sink_pin = 0; sink_pin < n; ++sink_pin) {
            AssignmentProblem problem;
            problem.net = &net;
            problem.graph = graph.get();
            problem.capacities = CapacitySnapshot(net);
            problem.pinned = {{source, static_cast<NcpId>(src_pin)},
                              {sink, static_cast<NcpId>(sink_pin)}};
            ASSERT_TRUE(check::exhaustively_enumerable(problem));
            const std::string tag =
                "topology=" + std::to_string(static_cast<int>(topology)) +
                " n=" + std::to_string(n) +
                " shape=" + std::to_string(static_cast<int>(shape)) +
                " pins=" + std::to_string(src_pin) + "," +
                std::to_string(sink_pin);

            const check::DifferentialReport d =
                check::differential_vs_exhaustive(problem, sparcle_assigner);
            EXPECT_TRUE(d.report.ok())
                << tag << "\n" << d.report.to_string();
            EXPECT_TRUE(d.optimal_feasible) << tag;
            EXPECT_TRUE(d.heuristic_feasible) << tag;

            const check::CheckReport mono =
                check::oracle_capacity_monotonicity(problem);
            EXPECT_TRUE(mono.ok()) << tag << "\n" << mono.to_string();

            const check::CheckReport scaled =
                check::oracle_scaling(problem, sparcle_assigner, 2.0);
            EXPECT_TRUE(scaled.ok()) << tag << "\n" << scaled.to_string();
            ++instances;
          }
        }
      }
    }
  }
  // 2 topologies x (4 + 9 + 16) pin pairs x 4 shapes.
  EXPECT_EQ(instances, 232u);
}

}  // namespace
}  // namespace sparcle
