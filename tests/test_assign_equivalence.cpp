/// \file test_assign_equivalence.cpp
/// The perf layers of SparcleAssigner (γ memoization with dirty-tracking,
/// floor-pruned evaluation, parallel candidate rounds) must be *invisible*:
/// the produced placement has to be bit-identical to the fresh-per-round
/// serial reference (memoize_gamma=false, eval_threads=1) on every
/// scenario.  This is the property test backing the invalidation rules
/// documented in docs/perf.md.

#include <gtest/gtest.h>

#include "testutil.hpp"

#include <vector>

#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

using workload::BottleneckCase;
using workload::GraphKind;
using workload::Scenario;
using workload::ScenarioSpec;
using workload::TopologyKind;

void expect_identical(const AssignmentResult& fast,
                      const AssignmentResult& ref, const TaskGraph& graph,
                      const std::string& label) {
  ASSERT_EQ(fast.feasible, ref.feasible) << label;
  EXPECT_EQ(fast.rate, ref.rate) << label;  // bit-identical, not just near
  for (CtId i = 0; i < static_cast<CtId>(graph.ct_count()); ++i)
    EXPECT_EQ(fast.placement.ct_host(i), ref.placement.ct_host(i))
        << label << " ct " << i;
  for (TtId k = 0; k < static_cast<TtId>(graph.tt_count()); ++k) {
    ASSERT_EQ(fast.placement.tt_placed(k), ref.placement.tt_placed(k))
        << label << " tt " << k;
    if (fast.placement.tt_placed(k)) {
      EXPECT_EQ(fast.placement.tt_route(k), ref.placement.tt_route(k))
          << label << " tt " << k;
    }
  }
}

class AssignEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AssignEquivalence, MemoizedParallelMatchesFreshSerialReference) {
  const int seed = GetParam();
  const TopologyKind topologies[] = {TopologyKind::kStar, TopologyKind::kFull,
                                     TopologyKind::kLinear};
  const GraphKind graphs[] = {GraphKind::kLinear, GraphKind::kDiamond};
  const BottleneckCase cases[] = {BottleneckCase::kNcp, BottleneckCase::kLink,
                                  BottleneckCase::kBalanced};
  const SparcleAssignerOptions::Ranking rankings[] = {
      SparcleAssignerOptions::Ranking::kMostConstrainedFirst,
      SparcleAssignerOptions::Ranking::kLeastConstrainedFirst,
      SparcleAssignerOptions::Ranking::kBestOfBoth,
  };

  for (TopologyKind topo : topologies)
    for (GraphKind gk : graphs)
      for (BottleneckCase bc : cases) {
        Rng rng(testutil::test_seed() + seed * 7919 + static_cast<int>(topo) * 31 +
                static_cast<int>(gk) * 7 + static_cast<int>(bc));
        ScenarioSpec spec;
        spec.topology = topo;
        spec.graph = gk;
        spec.bottleneck = bc;
        spec.ncps = 5 + static_cast<std::size_t>(seed % 3);
        spec.middle_cts = 3 + static_cast<std::size_t>(seed % 2);
        const Scenario sc = workload::make_scenario(spec, rng);
        const AssignmentProblem p = sc.problem();

        for (auto ranking : rankings) {
          SparcleAssignerOptions fast_opts;
          fast_opts.ranking = ranking;
          fast_opts.memoize_gamma = true;
          fast_opts.eval_threads = 3;  // force the pool even on 1 core

          SparcleAssignerOptions ref_opts = fast_opts;
          ref_opts.memoize_gamma = false;
          ref_opts.eval_threads = 1;

          const AssignmentResult fast =
              SparcleAssigner(fast_opts).assign(p);
          const AssignmentResult ref = SparcleAssigner(ref_opts).assign(p);

          const std::string label =
              "seed=" + std::to_string(seed) +
              " topo=" + workload::to_string(topo) +
              " graph=" + workload::to_string(gk) +
              " case=" + workload::to_string(bc) +
              " ranking=" + std::to_string(static_cast<int>(ranking));
          expect_identical(fast, ref, *sc.graph, label);
        }
      }
}

// Static-ranking ablation path must be unchanged too.
TEST_P(AssignEquivalence, StaticRankingMatchesReference) {
  Rng rng(testutil::test_seed() + GetParam() + 5000);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kFull;
  spec.graph = GraphKind::kDiamond;
  spec.bottleneck = BottleneckCase::kBalanced;
  spec.ncps = 6;
  const Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();

  SparcleAssignerOptions fast_opts;
  fast_opts.ranking = SparcleAssignerOptions::Ranking::kMostConstrainedFirst;
  fast_opts.dynamic_ranking = false;
  fast_opts.eval_threads = 2;
  SparcleAssignerOptions ref_opts = fast_opts;
  ref_opts.memoize_gamma = false;
  ref_opts.eval_threads = 1;

  const AssignmentResult fast = SparcleAssigner(fast_opts).assign(p);
  const AssignmentResult ref = SparcleAssigner(ref_opts).assign(p);
  expect_identical(fast, ref, *sc.graph, "static-ranking");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignEquivalence, ::testing::Range(1, 13));

}  // namespace
}  // namespace sparcle
