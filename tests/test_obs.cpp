#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

using namespace obs;

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to round-trip the registry and trace
// snapshots, so the tests check real machine-readability rather than
// substring presence.

struct Json {
  enum class Type { kNull, kNumber, kString, kArray, kObject } type{
      Type::kNull};
  double number{0.0};
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected ") + c + " got " +
                               s_[pos_]);
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.string = string();
        return v;
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out.push_back(s_[pos_++]);
    }
    expect('"');
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("bad number");
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  Json array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = string();
      expect(':');
      v.object.emplace(key, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& s_;
  std::size_t pos_{0};
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.counter("requests").add(3);
  reg.counter("requests").add(4);
  reg.gauge("load").set(2.5);
  Histogram& h = reg.histogram("latency", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const Json root = JsonParser(reg.to_json()).parse();
  EXPECT_EQ(root.at("counters").at("requests").number, 7.0);
  EXPECT_EQ(root.at("gauges").at("load").number, 2.5);
  const Json& lat = root.at("histograms").at("latency");
  ASSERT_EQ(lat.at("bounds").array.size(), 2u);
  EXPECT_EQ(lat.at("bounds").array[0].number, 1.0);
  EXPECT_EQ(lat.at("bounds").array[1].number, 10.0);
  ASSERT_EQ(lat.at("buckets").array.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(lat.at("buckets").array[0].number, 1.0);
  EXPECT_EQ(lat.at("buckets").array[1].number, 1.0);
  EXPECT_EQ(lat.at("buckets").array[2].number, 1.0);
  EXPECT_EQ(lat.at("count").number, 3.0);
  EXPECT_NEAR(lat.at("sum").number, 55.5, 1e-12);
}

TEST(Metrics, HistogramBucketBoundariesAreInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  // Bucket i counts x <= bounds[i] (first matching bound).
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0: x <= 1
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1: x <= 10
  h.observe(100.0);  // bucket 2
  h.observe(100.5);  // overflow
  ASSERT_EQ(h.bucket_count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 213.0001, 1e-9);
}

TEST(Metrics, FirstHistogramRegistrationWins) {
  MetricsRegistry reg;
  Histogram& a = reg.histogram("h", {1.0, 2.0});
  Histogram& b = reg.histogram("h", {5.0});  // bounds ignored
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.bounds().size(), 2u);
  EXPECT_EQ(reg.find_histogram("h"), &a);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
}

TEST(Metrics, CsvSnapshotListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).observe(0.5);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("counter,c,value,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,1.5"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le_1,1"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le_inf,0"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scoped timers and the Chrome trace

TEST(ChromeTrace, NestedTimersProduceWellFormedTrace) {
  ChromeTraceCollector trace;
  MetricsRegistry reg;
  {
    Observability o;
    o.trace = &trace;
    o.metrics = &reg;
    ScopedInstall session(o);
    ScopedTimer outer("outer");
    {
      ScopedTimer inner("inner");
    }
  }
  ASSERT_EQ(trace.event_count(), 2u);

  const Json root = JsonParser(trace.to_json()).parse();
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 2u);
  const Json* outer = nullptr;
  const Json* inner = nullptr;
  for (const Json& e : events) {
    EXPECT_EQ(e.at("ph").string, "X");
    EXPECT_EQ(e.at("pid").number, 1.0);
    if (e.at("name").string == "outer") outer = &e;
    if (e.at("name").string == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread, and the inner interval is contained in the outer one —
  // chrome://tracing renders exactly this containment as nesting.
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  const double out_ts = outer->at("ts").number;
  const double out_end = out_ts + outer->at("dur").number;
  const double in_ts = inner->at("ts").number;
  const double in_end = in_ts + inner->at("dur").number;
  EXPECT_LE(out_ts, in_ts + 1e-9);
  EXPECT_LE(in_end, out_end + 1e-9);

  // The timers also landed duration histograms in the registry.
  const Histogram* h = reg.find_histogram("outer.us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  ASSERT_NE(reg.find_histogram("inner.us"), nullptr);
}

TEST(ChromeTrace, TimersAreNoOpsWithNothingInstalled) {
  uninstall();
  {
    ScopedTimer t("ignored");
  }
  ChromeTraceCollector trace;
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_EQ(trace_collector(), nullptr);
  EXPECT_EQ(decision_log(), nullptr);
}

TEST(Obs, ScopedInstallRestoresPreviousSinks) {
  uninstall();
  MetricsRegistry outer_reg;
  Observability o;
  o.metrics = &outer_reg;
  install(o);
  {
    MetricsRegistry inner_reg;
    Observability i;
    i.metrics = &inner_reg;
    ScopedInstall session(i);
    EXPECT_EQ(metrics(), &inner_reg);
  }
  EXPECT_EQ(metrics(), &outer_reg);
  uninstall();
  EXPECT_EQ(metrics(), nullptr);
}

// ---------------------------------------------------------------------------
// Decision log

TEST(DecisionLog, CsvEscapesAndKeepsOrder) {
  DecisionLog log;
  log.record(DecisionKind::kPathAdd, "cam", "GR", "path 1: rate ok", 2.0,
             0.9, 1);
  log.record(DecisionKind::kAdmit, "cam", "GR", "QoE target met (rate 2, 1 path(s))",
             2.0, 0.9, 1);
  log.record(DecisionKind::kReject, "bulk", "BE", "", 0.0, 0.0, 0);
  EXPECT_EQ(log.size(), 3u);

  const std::string csv = log.to_csv();
  EXPECT_EQ(csv.find(DecisionLog::kCsvHeader), 0u);
  // Reason with a comma is double-quoted (RFC 4180).
  EXPECT_NE(csv.find("\"QoE target met (rate 2, 1 path(s))\""),
            std::string::npos);
  // Empty reasons are never emitted empty.
  EXPECT_NE(csv.find("(unspecified)"), std::string::npos);

  const auto rows = log.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].seq, 0u);
  EXPECT_EQ(rows[1].seq, 1u);
  EXPECT_EQ(rows[2].seq, 2u);
  EXPECT_EQ(rows[0].kind, DecisionKind::kPathAdd);
  EXPECT_EQ(rows[2].kind, DecisionKind::kReject);
}

TEST(DecisionLog, QueueRejectRowsRoundTripThroughCsv) {
  DecisionLog log;
  log.record(DecisionKind::kQueueReject, "burst42", "BE",
             "queue_full: 1024/1024 requests queued", 0.0, 0.0, 0);
  log.record(DecisionKind::kQueueReject, "late7", "GR",
             "deadline_exceeded: waited 1507us in queue", 0.0, 0.0, 0);

  EXPECT_STREQ(to_string(DecisionKind::kQueueReject), "queue_reject");

  const std::string csv = log.to_csv();
  // Kind column, app, and both reason strings survive the CSV sink (the
  // comma-free reasons stay unquoted).
  EXPECT_NE(csv.find("queue_reject,burst42,BE,queue_full: 1024/1024"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("queue_reject,late7,GR,deadline_exceeded:"),
            std::string::npos)
      << csv;

  const auto rows = log.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].kind, DecisionKind::kQueueReject);
  EXPECT_EQ(rows[1].kind, DecisionKind::kQueueReject);
  EXPECT_EQ(rows[0].reason, "queue_full: 1024/1024 requests queued");
  EXPECT_EQ(rows[1].app, "late7");
}

TEST(DecisionLog, CapacityCapDropsOldestAndKeepsSeqMonotone) {
  MetricsRegistry reg;
  Observability sinks;
  sinks.metrics = &reg;
  ScopedInstall session(sinks);

  DecisionLog log;
  log.set_capacity(2);
  for (int i = 0; i < 5; ++i)
    log.record(DecisionKind::kAdmit, "app" + std::to_string(i), "BE", "ok",
               1.0, 1.0, 1);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  const auto rows = log.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  // The newest rows survive; seq stays globally monotone across drops so
  // gaps are detectable in an exported audit window.
  EXPECT_EQ(rows[0].app, "app3");
  EXPECT_EQ(rows[0].seq, 3u);
  EXPECT_EQ(rows[1].seq, 4u);
  // Drops are mirrored to the installed registry.
  EXPECT_EQ(reg.snapshot().counter_or("decision_log.dropped"), 3u);

  // Shrinking evicts eagerly; a zero cap drops everything recorded.
  log.set_capacity(1);
  EXPECT_EQ(log.size(), 1u);
  log.set_capacity(0);
  EXPECT_EQ(log.size(), 0u);
  log.record(DecisionKind::kAdmit, "x", "BE", "ok", 1.0, 1.0, 1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 6u);
}

TEST(DecisionLog, RowsCarryTheActiveThreadTraceId) {
  DecisionLog log;
  {
    ScopedTrace scope(42);
    log.record(DecisionKind::kAdmit, "a", "BE", "ok", 1.0, 1.0, 1);
  }
  log.record(DecisionKind::kAdmit, "b", "BE", "ok", 1.0, 1.0, 1);
  const auto rows = log.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].trace, 42u);
  EXPECT_EQ(rows[1].trace, 0u);  // outside the scope the id is restored
  // The id is the trailing CSV column.
  const std::string csv = log.to_csv();
  EXPECT_NE(csv.find(",42\n"), std::string::npos) << csv;
}

TEST(ChromeTrace, CapacityCapKeepsTheNewestEvents) {
  MetricsRegistry reg;
  Observability sinks;
  sinks.metrics = &reg;
  ScopedInstall session(sinks);

  ChromeTraceCollector trace;
  trace.set_capacity(3);
  for (int i = 0; i < 7; ++i)
    trace.record_complete("e" + std::to_string(i), i * 10.0, 1.0);
  EXPECT_EQ(trace.event_count(), 3u);
  EXPECT_EQ(trace.dropped(), 4u);
  const std::string json = trace.to_json();
  EXPECT_EQ(json.find("\"name\": \"e0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"e6\""), std::string::npos);
  EXPECT_EQ(reg.snapshot().counter_or("trace.dropped"), 4u);

  // A zero cap records nothing (but still counts the attempts).
  trace.set_capacity(0);
  EXPECT_EQ(trace.event_count(), 0u);
  trace.record_flow("flow", 0.0, /*start=*/true, 9);
  EXPECT_EQ(trace.event_count(), 0u);
  EXPECT_EQ(trace.dropped(), 8u);
}

// ---------------------------------------------------------------------------
// End-to-end: assigner memo counters match the known call pattern

/// With kMostConstrainedFirst and U unplaced CTs, every round refreshes
/// each still-unplaced CT exactly once (hit or miss) and commits one CT,
/// so over the whole assign:  hits + misses == U(U+1)/2  and every miss
/// after the U cold ones was caused by exactly one invalidation:
/// misses == U + invalidations.  With memoization off every entry is
/// invalidated after every commit: hits == 0, misses == U(U+1)/2,
/// invalidations == U(U-1)/2.
TEST(ObsE2E, AssignerMemoCountersMatchCallPattern) {
  Rng rng(7);
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kDiamond;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  const workload::Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();
  const std::uint64_t u =
      static_cast<std::uint64_t>(sc.graph->ct_count() - sc.pinned.size());
  ASSERT_GE(u, 2u);
  const std::uint64_t evals = u * (u + 1) / 2;

  SparcleAssignerOptions opt;
  opt.ranking = SparcleAssignerOptions::Ranking::kMostConstrainedFirst;
  opt.eval_threads = 1;

  const auto run = [&](bool memoize) {
    MetricsRegistry reg;
    AssignmentResult result;
    {
      Observability o;
      o.metrics = &reg;
      ScopedInstall session(o);
      SparcleAssignerOptions o2 = opt;
      o2.memoize_gamma = memoize;
      result = SparcleAssigner(o2).assign(p);
    }
    const Json root = JsonParser(reg.to_json()).parse();
    const auto& c = root.at("counters");
    struct Out {
      AssignmentResult result;
      std::uint64_t assigns, rounds, hits, misses, invalidations;
    } out;
    out.result = std::move(result);
    out.assigns = static_cast<std::uint64_t>(c.at("assigner.assigns").number);
    out.rounds =
        static_cast<std::uint64_t>(c.at("assigner.ranking_rounds").number);
    out.hits = static_cast<std::uint64_t>(c.at("assigner.memo.hits").number);
    out.misses =
        static_cast<std::uint64_t>(c.at("assigner.memo.misses").number);
    out.invalidations = static_cast<std::uint64_t>(
        c.at("assigner.memo.invalidations").number);
    return out;
  };

  const auto memo = run(true);
  ASSERT_TRUE(memo.result.feasible) << memo.result.message;
  EXPECT_EQ(memo.assigns, 1u);
  EXPECT_EQ(memo.rounds, u);
  EXPECT_EQ(memo.hits + memo.misses, evals);
  EXPECT_EQ(memo.misses, u + memo.invalidations);
  EXPECT_GT(memo.hits, 0u);  // memoization actually saved work here

  const auto fresh = run(false);
  ASSERT_TRUE(fresh.result.feasible) << fresh.result.message;
  EXPECT_EQ(fresh.hits, 0u);
  EXPECT_EQ(fresh.misses, evals);
  EXPECT_EQ(fresh.invalidations, u * (u - 1) / 2);
  // The memoized run placed every CT identically (perf knob, not policy).
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i)
    EXPECT_EQ(memo.result.placement.ct_host(i),
              fresh.result.placement.ct_host(i));
}

// ---------------------------------------------------------------------------
// End-to-end: scheduler decisions and spans

TEST(ObsE2E, SchedulerEmitsDecisionRowsAndNestedSpans) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("relay", ResourceVector::scalar(10.0));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("sr", 0, 1, 1000.0);
  net.add_link("rd", 1, 2, 1000.0);

  auto graph = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = graph->add_ct("source", ResourceVector::scalar(0));
  const CtId m = graph->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = graph->add_ct("sink", ResourceVector::scalar(0));
  graph->add_tt("sm", 1.0, s, m);
  graph->add_tt("mt", 1.0, m, t);
  graph->finalize();

  MetricsRegistry reg;
  ChromeTraceCollector trace;
  DecisionLog decisions;
  {
    Observability o;
    o.metrics = &reg;
    o.trace = &trace;
    o.decisions = &decisions;
    ScopedInstall session(o);

    Scheduler sched(net);
    Application ok;
    ok.name = "ok";
    ok.graph = graph;
    ok.qoe = QoeSpec::best_effort(1.0);
    ok.pinned = {{s, 0}, {t, 2}};
    ASSERT_TRUE(sched.submit(ok).admitted);

    Application greedy;
    greedy.name = "greedy";
    greedy.graph = graph;
    greedy.qoe = QoeSpec::guaranteed_rate(1e6, 0.5);  // impossible rate
    greedy.pinned = {{s, 0}, {t, 2}};
    ASSERT_FALSE(sched.submit(greedy).admitted);
  }

  // One admit row (+ its path rows) and one reject row, reasons non-empty.
  std::size_t admits = 0, rejects = 0, path_adds = 0;
  for (const Decision& d : decisions.snapshot()) {
    EXPECT_FALSE(d.reason.empty());
    switch (d.kind) {
      case DecisionKind::kAdmit:
        ++admits;
        EXPECT_EQ(d.app, "ok");
        EXPECT_EQ(d.qoe, "BE");
        break;
      case DecisionKind::kReject:
        ++rejects;
        EXPECT_EQ(d.app, "greedy");
        EXPECT_EQ(d.qoe, "GR");
        break;
      case DecisionKind::kPathAdd: ++path_adds; break;
      default: break;  // repair / queue_reject rows: other tests' domain
    }
  }
  EXPECT_EQ(admits, 1u);
  EXPECT_EQ(rejects, 1u);
  EXPECT_GE(path_adds, 1u);

  EXPECT_EQ(reg.counter("scheduler.submits").value(), 2u);
  EXPECT_EQ(reg.counter("scheduler.admitted").value(), 1u);
  EXPECT_EQ(reg.counter("scheduler.rejected").value(), 1u);

  // Every assigner span nests inside some scheduler.submit span.
  const Json root = JsonParser(trace.to_json()).parse();
  std::vector<std::pair<double, double>> submits_iv;
  std::vector<std::pair<double, double>> assign_iv;
  for (const Json& e : root.at("traceEvents").array) {
    const double ts = e.at("ts").number;
    const double end = ts + e.at("dur").number;
    if (e.at("name").string == "scheduler.submit")
      submits_iv.emplace_back(ts, end);
    if (e.at("name").string == "assigner.assign")
      assign_iv.emplace_back(ts, end);
  }
  EXPECT_EQ(submits_iv.size(), 2u);
  ASSERT_FALSE(assign_iv.empty());
  for (const auto& [ts, end] : assign_iv) {
    bool contained = false;
    for (const auto& [sts, send] : submits_iv)
      contained = contained || (sts <= ts + 1e-9 && end <= send + 1e-9);
    EXPECT_TRUE(contained);
  }
}

}  // namespace
}  // namespace sparcle
