#include "core/availability.hpp"

#include <gtest/gtest.h>

#include "workload/rng.hpp"
#include "testutil.hpp"

namespace sparcle {
namespace {

/// A network whose elements exist only to carry failure probabilities.
Network make_failure_net(const std::vector<double>& ncp_pf,
                         const std::vector<double>& link_pf) {
  Network net(ResourceSchema::cpu_only());
  for (std::size_t j = 0; j < ncp_pf.size(); ++j)
    net.add_ncp("n" + std::to_string(j), ResourceVector::scalar(1),
                ncp_pf[j]);
  for (std::size_t l = 0; l < link_pf.size(); ++l)
    net.add_link("l" + std::to_string(l), 0,
                 static_cast<NcpId>(1 + l % (ncp_pf.size() - 1)), 1.0,
                 link_pf[l]);
  return net;
}

TEST(Availability, SinglePathIsProductOfUpProbabilities) {
  const Network net = make_failure_net({0.1, 0.2, 0.0}, {0.05});
  const std::vector<ElementKey> path = {
      ElementKey::ncp(0), ElementKey::ncp(1), ElementKey::link(0)};
  EXPECT_NEAR(all_up_probability(net, path), 0.9 * 0.8 * 0.95, 1e-12);
  EXPECT_NEAR(availability_any(net, {path}), 0.9 * 0.8 * 0.95, 1e-12);
}

TEST(Availability, DuplicateElementsCountOnce) {
  const Network net = make_failure_net({0.5, 0.0}, {});
  const std::vector<ElementKey> path = {ElementKey::ncp(0),
                                        ElementKey::ncp(0)};
  EXPECT_NEAR(all_up_probability(net, path), 0.5, 1e-12);
}

TEST(Availability, TwoDisjointPaths) {
  // P(A ∪ B) = a + b - ab for independent paths.
  const Network net = make_failure_net({0.1, 0.2, 0.3, 0.4}, {});
  const std::vector<ElementKey> p1 = {ElementKey::ncp(0),
                                      ElementKey::ncp(1)};
  const std::vector<ElementKey> p2 = {ElementKey::ncp(2),
                                      ElementKey::ncp(3)};
  const double a = 0.9 * 0.8, b = 0.7 * 0.6;
  EXPECT_NEAR(availability_any(net, {p1, p2}), a + b - a * b, 1e-12);
}

TEST(Availability, OverlappingPathsShareFate) {
  // Both paths contain NCP 0: P(A ∪ B) = u0 (u1 + u2 - u1 u2).
  const Network net = make_failure_net({0.2, 0.3, 0.4}, {});
  const std::vector<ElementKey> p1 = {ElementKey::ncp(0),
                                      ElementKey::ncp(1)};
  const std::vector<ElementKey> p2 = {ElementKey::ncp(0),
                                      ElementKey::ncp(2)};
  const double expected = 0.8 * (0.7 + 0.6 - 0.7 * 0.6);
  EXPECT_NEAR(availability_any(net, {p1, p2}), expected, 1e-12);
}

TEST(Availability, IdenticalPathsAddNothing) {
  const Network net = make_failure_net({0.25, 0.0}, {});
  const std::vector<ElementKey> p = {ElementKey::ncp(0)};
  EXPECT_NEAR(availability_any(net, {p, p, p}), 0.75, 1e-12);
}

TEST(Availability, ExactStateProbabilitiesSumToOne) {
  const Network net = make_failure_net({0.1, 0.2, 0.3}, {0.15, 0.25});
  const std::vector<std::vector<ElementKey>> paths = {
      {ElementKey::ncp(0), ElementKey::link(0)},
      {ElementKey::ncp(1), ElementKey::link(1)},
      {ElementKey::ncp(0), ElementKey::ncp(2)}};
  double total = 0;
  for (std::uint32_t mask = 0; mask < 8; ++mask)
    total += exact_path_state_probability(net, paths, mask);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Availability, ExactStateMatchesAnyAvailability) {
  const Network net = make_failure_net({0.1, 0.2, 0.3}, {0.15, 0.25});
  const std::vector<std::vector<ElementKey>> paths = {
      {ElementKey::ncp(0), ElementKey::link(0)},
      {ElementKey::ncp(1), ElementKey::link(1)}};
  // availability_any == 1 - P(exactly none works).
  EXPECT_NEAR(availability_any(net, paths),
              1.0 - exact_path_state_probability(net, paths, 0), 1e-9);
}

TEST(MinRateAvailability, SubsetSumQualification) {
  // Disjoint paths with rates 2.67, 1.2, 0.42 and min rate 2.7 (the paper's
  // Fig. 10(b) narrative): a single path never suffices; {1,2} and {1,3}
  // qualify, {2,3} does not.
  const Network net =
      make_failure_net({0.1, 0.1, 0.1, 0.0}, {});
  const std::vector<std::vector<ElementKey>> paths = {
      {ElementKey::ncp(0)}, {ElementKey::ncp(1)}, {ElementKey::ncp(2)}};
  const std::vector<double> rates = {2.67, 1.2, 0.42};
  const double u = 0.9;
  // Qualifying subsets: {1,2}, {1,3}, {1,2,3}.
  const double expected = u * u * (1 - u) * 2 + u * u * u;
  EXPECT_NEAR(min_rate_availability(net, paths, rates, 2.7), expected, 1e-12);
}

TEST(MinRateAvailability, SinglePathAboveTarget) {
  const Network net = make_failure_net({0.2, 0.0}, {});
  const std::vector<std::vector<ElementKey>> paths = {{ElementKey::ncp(0)}};
  EXPECT_NEAR(min_rate_availability(net, paths, {5.0}, 3.0), 0.8, 1e-12);
  EXPECT_NEAR(min_rate_availability(net, paths, {2.0}, 3.0), 0.0, 1e-12);
}

TEST(MinRateAvailability, ZeroTargetIsAlwaysMet) {
  const Network net = make_failure_net({0.2, 0.0}, {});
  const std::vector<std::vector<ElementKey>> paths = {{ElementKey::ncp(0)}};
  EXPECT_NEAR(min_rate_availability(net, paths, {5.0}, 0.0), 1.0, 1e-12);
}

TEST(MinRateAvailability, MoreQualifyingPathsIncreaseAvailability) {
  const Network net = make_failure_net({0.1, 0.1, 0.1, 0.0}, {});
  const std::vector<ElementKey> e0 = {ElementKey::ncp(0)};
  const std::vector<ElementKey> e1 = {ElementKey::ncp(1)};
  const std::vector<ElementKey> e2 = {ElementKey::ncp(2)};
  const double one = min_rate_availability(net, {e0}, {3.0}, 2.0);
  const double two = min_rate_availability(net, {e0, e1}, {3.0, 3.0}, 2.0);
  const double three =
      min_rate_availability(net, {e0, e1, e2}, {3.0, 3.0, 3.0}, 2.0);
  EXPECT_LT(one, two);
  EXPECT_LT(two, three);
}

TEST(Availability, RejectsTooManyPathsForExactAnalysis) {
  const Network net = make_failure_net({0.1, 0.0}, {});
  std::vector<std::vector<ElementKey>> paths(kMaxExactPaths + 1,
                                             {ElementKey::ncp(0)});
  EXPECT_THROW(availability_any(net, paths), std::invalid_argument);
  EXPECT_THROW(
      min_rate_availability(net, paths,
                            std::vector<double>(paths.size(), 1.0), 0.5),
      std::invalid_argument);
}

TEST(Availability, RejectsEmptyInput) {
  const Network net = make_failure_net({0.1, 0.0}, {});
  EXPECT_THROW(availability_any(net, {}), std::invalid_argument);
}

/// Cross-validation: exact inclusion–exclusion vs Monte Carlo on random
/// path systems with overlap.
class AvailabilityMc : public ::testing::TestWithParam<int> {};

TEST_P(AvailabilityMc, ExactMatchesMonteCarlo) {
  Rng rng(testutil::test_seed() + GetParam());
  std::vector<double> ncp_pf(6);
  for (double& p : ncp_pf) p = rng.uniform(0.0, 0.4);
  std::vector<double> link_pf(4);
  for (double& p : link_pf) p = rng.uniform(0.0, 0.4);
  const Network net = make_failure_net(ncp_pf, link_pf);

  // 3 random paths of 3 random elements each (overlaps likely).
  std::vector<std::vector<ElementKey>> paths;
  std::vector<double> rates;
  for (int p = 0; p < 3; ++p) {
    std::vector<ElementKey> path;
    for (int e = 0; e < 3; ++e) {
      if (rng.bernoulli(0.5))
        path.push_back(ElementKey::ncp(
            static_cast<NcpId>(rng.uniform_int(0, 5))));
      else
        path.push_back(ElementKey::link(
            static_cast<LinkId>(rng.uniform_int(0, 3))));
    }
    paths.push_back(path);
    rates.push_back(rng.uniform(0.5, 3.0));
  }

  const std::size_t trials = 200000;
  const double exact_any = availability_any(net, paths);
  const double mc_any = availability_any_mc(net, paths, trials, 99);
  EXPECT_NEAR(exact_any, mc_any, 0.01);

  const double target = 2.0;
  const double exact_mr = min_rate_availability(net, paths, rates, target);
  const double mc_mr =
      min_rate_availability_mc(net, paths, rates, target, trials, 99);
  EXPECT_NEAR(exact_mr, mc_mr, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvailabilityMc, ::testing::Range(1, 11));

/// Overlap-heavy path system with `n` paths over a small element pool: a
/// shared backbone NCP plus random extra elements, so inclusion–exclusion
/// cancellation is maximally stressed near the kMaxExactPaths guard.
std::vector<std::vector<ElementKey>> overlap_heavy_paths(Rng& rng,
                                                         std::size_t n) {
  std::vector<std::vector<ElementKey>> paths;
  for (std::size_t p = 0; p < n; ++p) {
    std::vector<ElementKey> path = {ElementKey::ncp(0)};  // shared backbone
    const int extras = rng.uniform_int(1, 2);
    for (int e = 0; e < extras; ++e) {
      if (rng.bernoulli(0.5))
        path.push_back(
            ElementKey::ncp(static_cast<NcpId>(rng.uniform_int(1, 5))));
      else
        path.push_back(
            ElementKey::link(static_cast<LinkId>(rng.uniform_int(0, 3))));
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

/// Guard-rail: the exact analyses stay consistent with Monte Carlo right
/// up to the kMaxExactPaths boundary (n = kMaxExactPaths - 1 and n =
/// kMaxExactPaths), where the subset enumeration is largest and the
/// alternating-sign cancellation most delicate.
class AvailabilityGuardBoundary
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AvailabilityGuardBoundary, McMatchesExactAtGuard) {
  const std::size_t n = GetParam();
  ASSERT_LE(n, kMaxExactPaths);
  Rng rng(testutil::test_seed() + 0xa11 + n);
  std::vector<double> ncp_pf(6);
  for (double& p : ncp_pf) p = rng.uniform(0.02, 0.3);
  std::vector<double> link_pf(4);
  for (double& p : link_pf) p = rng.uniform(0.02, 0.3);
  const Network net = make_failure_net(ncp_pf, link_pf);
  const std::vector<std::vector<ElementKey>> paths =
      overlap_heavy_paths(rng, n);
  std::vector<double> rates;
  for (std::size_t p = 0; p < n; ++p) rates.push_back(rng.uniform(0.3, 2.0));

  const std::size_t trials = 300000;
  const std::uint64_t mc_seed = testutil::test_seed() + 4242;

  const double exact_any = availability_any(net, paths);
  EXPECT_GE(exact_any, 0.0);
  EXPECT_LE(exact_any, 1.0);
  EXPECT_NEAR(exact_any, availability_any_mc(net, paths, trials, mc_seed),
              0.01);

  const double target = 1.5;
  const double exact_mr = min_rate_availability(net, paths, rates, target);
  EXPECT_GE(exact_mr, 0.0);
  EXPECT_LE(exact_mr, 1.0);
  EXPECT_NEAR(exact_mr,
              min_rate_availability_mc(net, paths, rates, target, trials,
                                       mc_seed),
              0.01);
}

INSTANTIATE_TEST_SUITE_P(AtGuard, AvailabilityGuardBoundary,
                         ::testing::Values(kMaxExactPaths - 1,
                                           kMaxExactPaths));

/// One past the guard the exact analyses must refuse (not silently
/// overflow the subset enumeration) while the Monte-Carlo estimators keep
/// working; 13 identical single-element paths make the true availability
/// analytic (the element's up-probability), so the MC answer is checkable.
TEST(Availability, BeyondGuardExactThrowsButMcWorks) {
  const Network net = make_failure_net({0.1, 0.0}, {});
  const std::vector<std::vector<ElementKey>> paths(kMaxExactPaths + 1,
                                                   {ElementKey::ncp(0)});
  const std::vector<double> rates(paths.size(), 1.0);

  EXPECT_THROW(availability_any(net, paths), std::invalid_argument);
  EXPECT_THROW(min_rate_availability(net, paths, rates, 0.5),
               std::invalid_argument);

  const std::size_t trials = 200000;
  const std::uint64_t mc_seed = testutil::test_seed() + 7;
  EXPECT_NEAR(availability_any_mc(net, paths, trials, mc_seed), 0.9, 0.01);
  // All 13 paths share fate, so rate 13.0 is available iff ncp(0) is up.
  EXPECT_NEAR(min_rate_availability_mc(net, paths, rates, 13.0, trials,
                                       mc_seed),
              0.9, 0.01);
}

}  // namespace
}  // namespace sparcle
