/// \file test_integration.cpp
/// Cross-module tests: the Fig. 6 testbed narrative, scheduler allocations
/// replayed in the simulator, and optimality dominance end-to-end.

#include <gtest/gtest.h>

#include "baselines/cloud.hpp"
#include "baselines/exhaustive.hpp"
#include "core/scheduler.hpp"
#include "core/sparcle_assigner.hpp"
#include "sim/stream_simulator.hpp"
#include "workload/scenarios.hpp"
#include "workload/task_graphs.hpp"
#include "workload/topologies.hpp"

namespace sparcle {
namespace {

AssignmentProblem testbed_problem(const workload::Testbed& tb,
                                  const TaskGraph& graph) {
  AssignmentProblem p;
  p.net = &tb.net;
  p.graph = &graph;
  p.capacities = CapacitySnapshot(tb.net);
  p.pinned = {{graph.sources()[0], tb.camera}, {graph.sinks()[0], tb.consumer}};
  return p;
}

TEST(TestbedIntegration, DispersedBeatsCloudAtLowFieldBandwidth) {
  // Fig. 6 @ 0.5 Mbps: the raw 3.1 MB stream cannot reach the cloud;
  // SPARCLE's dispersed placement wins by a large factor (paper: ~9x).
  const auto tb = workload::testbed_network(0.5);
  const auto graph = workload::face_detection_app();
  const AssignmentProblem p = testbed_problem(tb, *graph);
  const double sparcle = SparcleAssigner().assign(p).rate;
  const double cloud = CloudAssigner(tb.cloud).assign(p).rate;
  ASSERT_GT(cloud, 0.0);
  EXPECT_GE(sparcle / cloud, 5.0);
  EXPECT_LE(sparcle / cloud, 20.0);
}

TEST(TestbedIntegration, CloudIsOptimalAtTenMbps) {
  // Fig. 6 @ 10 Mbps: "SPARCLE only uses the cloud, which is the optimal
  // choice" — the rates should coincide (within tolerance).
  const auto tb = workload::testbed_network(10.0);
  const auto graph = workload::face_detection_app();
  const AssignmentProblem p = testbed_problem(tb, *graph);
  const double sparcle = SparcleAssigner().assign(p).rate;
  const double cloud = CloudAssigner(tb.cloud).assign(p).rate;
  const double optimal = ExhaustiveAssigner().assign(p).rate;
  // The cloud baseline routes on plain shortest paths, so it may trail the
  // optimum by a sliver of return-traffic interference; the all-in-cloud
  // *placement* is what is optimal here.
  EXPECT_NEAR(cloud, optimal, 0.01 * optimal);
  EXPECT_GE(sparcle, 0.95 * cloud);
}

TEST(TestbedIntegration, DispersedStillHelpsAtHighBandwidth) {
  // Fig. 6 @ 22 Mbps: dispersed computing beats pure cloud by ~23% because
  // offloading part of the pipeline to field NCPs relieves the cloud CPU.
  const auto tb = workload::testbed_network(22.0);
  const auto graph = workload::face_detection_app();
  const AssignmentProblem p = testbed_problem(tb, *graph);
  const double cloud = CloudAssigner(tb.cloud).assign(p).rate;
  const double optimal = ExhaustiveAssigner().assign(p).rate;
  EXPECT_GE(optimal / cloud, 1.1);
}

TEST(TestbedIntegration, SparcleTracksOptimalAcrossBandwidths) {
  const auto graph = workload::face_detection_app();
  for (double bw : {0.5, 2.0, 10.0, 22.0}) {
    const auto tb = workload::testbed_network(bw);
    const AssignmentProblem p = testbed_problem(tb, *graph);
    const double sparcle = SparcleAssigner().assign(p).rate;
    const double optimal = ExhaustiveAssigner().assign(p).rate;
    EXPECT_LE(sparcle, optimal + 1e-9) << bw;
    EXPECT_GE(sparcle, 0.75 * optimal) << "field bw " << bw << " Mbps";
  }
}

TEST(TestbedIntegration, SimulatorSustainsSparclePlacement) {
  const auto tb = workload::testbed_network(22.0);
  const auto graph = workload::face_detection_app();
  const AssignmentProblem p = testbed_problem(tb, *graph);
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  sim::StreamSimulator simulator(tb.net, 3);
  const double rate = 0.92 * r.rate;
  simulator.add_stream(*graph, r.placement, rate);
  const double horizon = 300.0 / rate;
  const auto rep = simulator.run(horizon, horizon / 4);
  EXPECT_NEAR(rep.streams[0].throughput, rate, 0.07 * rate);
}

TEST(SchedulerIntegration, AllocatedRatesAreSimulatable) {
  // Two BE apps placed by the scheduler: replaying every committed path at
  // its allocated rate must keep all queues stable (deliver ~everything).
  Rng rng(11);
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kLinear;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  const workload::Scenario sc = workload::make_scenario(spec, rng);

  Scheduler sched(sc.net);
  Application app1{"app1", sc.graph, QoeSpec::best_effort(2.0), sc.pinned};
  Application app2{"app2", sc.graph, QoeSpec::best_effort(1.0), sc.pinned};
  ASSERT_TRUE(sched.submit(app1).admitted);
  ASSERT_TRUE(sched.submit(app2).admitted);

  sim::StreamSimulator simulator(sc.net, 5);
  double min_rate = 1e300;
  for (const PlacedApp& pa : sched.placed())
    for (std::size_t k = 0; k < pa.paths.size(); ++k)
      if (pa.path_rates[k] > 1e-9) {
        simulator.add_stream(*pa.app.graph, pa.paths[k].placement,
                             0.95 * pa.path_rates[k]);
        min_rate = std::min(min_rate, pa.path_rates[k]);
      }
  const double horizon = 300.0 / min_rate;
  const auto rep = simulator.run(horizon, horizon / 4);
  std::size_t idx = 0;
  for (const PlacedApp& pa : sched.placed())
    for (std::size_t k = 0; k < pa.paths.size(); ++k)
      if (pa.path_rates[k] > 1e-9) {
        const double expect = 0.95 * pa.path_rates[k];
        EXPECT_NEAR(rep.streams[idx].throughput, expect, 0.1 * expect)
            << "stream " << idx;
        ++idx;
      }
}

TEST(SchedulerIntegration, GrReservationSurvivesBeChurn) {
  // A GR app's rate is untouched by later BE arrivals (the reservation
  // semantics of §IV-C).
  Rng rng(4);
  workload::ScenarioSpec spec;
  spec.graph = workload::GraphKind::kLinear;
  const workload::Scenario sc = workload::make_scenario(spec, rng);

  Scheduler sched(sc.net);
  // Ask for half of what a solo placement would achieve.
  const AssignmentProblem p0 = sc.problem();
  const double solo = SparcleAssigner().assign(p0).rate;
  Application gr{"gr", sc.graph, QoeSpec::guaranteed_rate(0.5 * solo, 0.0),
                 sc.pinned};
  const auto gr_res = sched.submit(gr);
  ASSERT_TRUE(gr_res.admitted) << gr_res.reason;
  const double gr_rate = sched.total_gr_rate();

  for (int i = 0; i < 3; ++i) {
    Application be{"be" + std::to_string(i), sc.graph,
                   QoeSpec::best_effort(1.0), sc.pinned};
    sched.submit(be);
  }
  EXPECT_DOUBLE_EQ(sched.total_gr_rate(), gr_rate);
}

TEST(EndToEnd, ObjectClassificationQuickstartScenario) {
  // The quickstart example's scenario, asserted: detection lands off-site,
  // rate is positive, and the simulator confirms it.
  Network net(ResourceSchema::cpu_only());
  const NcpId site = net.add_ncp("site", ResourceVector::scalar(2000));
  const NcpId dev1 = net.add_ncp("dev1", ResourceVector::scalar(4000));
  const NcpId dev2 = net.add_ncp("dev2", ResourceVector::scalar(4000));
  const NcpId edge = net.add_ncp("edge", ResourceVector::scalar(12000));
  net.add_link("site-dev1", site, dev1, 40e6);
  net.add_link("site-dev2", site, dev2, 40e6);
  net.add_link("dev1-edge", dev1, edge, 20e6);
  net.add_link("dev2-edge", dev2, edge, 20e6);
  const auto graph = workload::object_classification_app();
  AssignmentProblem p;
  p.net = &net;
  p.graph = graph.get();
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{graph->sources()[0], site},
              {graph->sources()[1], site},
              {graph->sinks()[0], site}};
  const AssignmentResult r = SparcleAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_NE(r.placement.ct_host(2), site);  // detection offloaded
  EXPECT_GT(r.rate, 0.3);
}

}  // namespace
}  // namespace sparcle
