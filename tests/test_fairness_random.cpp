/// \file test_fairness_random.cpp
/// Randomized property sweep for the proportional-fairness solver: on
/// random feasible problems the returned point must satisfy the KKT
/// conditions of problem (4) and resist random feasible perturbations.

#include <gtest/gtest.h>

#include <vector>

#include "core/fairness.hpp"
#include "workload/rng.hpp"
#include "testutil.hpp"

namespace sparcle {
namespace {

PfProblem random_problem(Rng& rng, std::size_t apps, std::size_t rows) {
  PfProblem p;
  p.capacity.resize(rows);
  for (double& c : p.capacity) c = rng.uniform(10, 100);
  for (std::size_t a = 0; a < apps; ++a) {
    const std::size_t paths = static_cast<std::size_t>(rng.uniform_int(1, 2));
    p.app_priority.push_back(rng.uniform(0.5, 4.0));
    for (std::size_t k = 0; k < paths; ++k) {
      PfProblem::Column col;
      // Each path loads 1..3 random rows.
      const std::size_t touches =
          static_cast<std::size_t>(rng.uniform_int(1, 3));
      std::vector<char> used(rows, 0);
      for (std::size_t t = 0; t < touches; ++t) {
        const std::size_t row = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(rows) - 1));
        if (used[row]) continue;
        used[row] = 1;
        col.entries.emplace_back(row, rng.uniform(0.5, 5.0));
      }
      p.columns.push_back(std::move(col));
      p.var_app.push_back(a);
    }
  }
  return p;
}

class FairnessRandom : public ::testing::TestWithParam<int> {};

TEST_P(FairnessRandom, KktConditionsHold) {
  Rng rng(testutil::test_seed() + GetParam());
  const PfProblem p = random_problem(rng, 4, 6);
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  ASSERT_LE(s.max_violation, 1e-6);

  // Stationarity: for every path variable with positive rate,
  //   P_a / x_a  ==  Σ_rows λ_row R_row,v   (within solver tolerance);
  // for (near-)zero variables the price may exceed the marginal utility.
  for (std::size_t v = 0; v < p.var_count(); ++v) {
    const std::size_t a = p.var_app[v];
    ASSERT_GT(s.app_rate[a], 0.0);
    double price = 0;
    for (const auto& [row, coeff] : p.columns[v].entries)
      price += s.dual[row] * coeff;
    const double marginal = p.app_priority[a] / s.app_rate[a];
    const double scale = std::max(marginal, price);
    if (s.path_rate[v] > 1e-4 * s.app_rate[a]) {
      EXPECT_NEAR(marginal, price, 0.05 * scale)
          << "seed " << GetParam() << " var " << v;
    } else {
      EXPECT_LE(marginal, price * 1.05 + 1e-9)
          << "seed " << GetParam() << " var " << v;
    }
  }
}

TEST_P(FairnessRandom, LocalPerturbationsNeverImproveUtility) {
  Rng rng(testutil::test_seed() + GetParam() + 500);
  const PfProblem p = random_problem(rng, 3, 5);
  const PfSolution s = solve_weighted_pf(p);
  ASSERT_TRUE(s.converged);
  const double base = pf_utility(p, s.path_rate);

  auto feasible = [&](const std::vector<double>& x) {
    for (double v : x)
      if (v <= 0) return false;
    std::vector<double> used(p.capacity.size(), 0.0);
    for (std::size_t v = 0; v < x.size(); ++v)
      for (const auto& [row, coeff] : p.columns[v].entries)
        used[row] += coeff * x[v];
    for (std::size_t row = 0; row < used.size(); ++row)
      if (used[row] > p.capacity[row]) return false;
    return true;
  };

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> x = s.path_rate;
    for (double& v : x) v += rng.uniform(-0.05, 0.05) * (v + 0.01);
    if (!feasible(x)) continue;
    EXPECT_LE(pf_utility(p, x), base + 1e-5)
        << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(FairnessRandom, ScalingCapacitiesScalesRates) {
  Rng rng(testutil::test_seed() + GetParam() + 900);
  PfProblem p = random_problem(rng, 3, 5);
  const PfSolution s1 = solve_weighted_pf(p);
  for (double& c : p.capacity) c *= 4.0;
  const PfSolution s4 = solve_weighted_pf(p);
  ASSERT_TRUE(s1.converged);
  ASSERT_TRUE(s4.converged);
  for (std::size_t a = 0; a < p.app_count(); ++a)
    EXPECT_NEAR(s4.app_rate[a], 4.0 * s1.app_rate[a],
                0.02 * s4.app_rate[a])
        << "seed " << GetParam() << " app " << a;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessRandom, ::testing::Range(1, 16));

}  // namespace
}  // namespace sparcle
