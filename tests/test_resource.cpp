#include "model/resource.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sparcle {
namespace {

TEST(ResourceSchema, CpuOnlyHasOneType) {
  const ResourceSchema s = ResourceSchema::cpu_only();
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.name(0), "cpu");
}

TEST(ResourceSchema, CpuMemoryHasTwoTypes) {
  const ResourceSchema s = ResourceSchema::cpu_memory();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.name(0), "cpu");
  EXPECT_EQ(s.name(1), "memory");
}

TEST(ResourceSchema, EqualityComparesNames) {
  EXPECT_EQ(ResourceSchema::cpu_only(), ResourceSchema::cpu_only());
  EXPECT_NE(ResourceSchema::cpu_only(), ResourceSchema::cpu_memory());
}

TEST(ResourceVector, ScalarConstructsSingleEntry) {
  const ResourceVector v = ResourceVector::scalar(7.5);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 7.5);
}

TEST(ResourceVector, FillConstructor) {
  const ResourceVector v(3, 2.0);
  ASSERT_EQ(v.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(v[r], 2.0);
}

TEST(ResourceVector, AdditionIsComponentWise) {
  const ResourceVector a{1.0, 2.0};
  const ResourceVector b{10.0, 20.0};
  const ResourceVector c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 11.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
}

TEST(ResourceVector, SubtractionIsComponentWise) {
  const ResourceVector a{5.0, 7.0};
  const ResourceVector b{1.0, 2.0};
  const ResourceVector c = a - b;
  EXPECT_DOUBLE_EQ(c[0], 4.0);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
}

TEST(ResourceVector, ScalarMultiplication) {
  const ResourceVector a{2.0, 3.0};
  const ResourceVector c = a * 2.5;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 7.5);
}

TEST(ResourceVector, SizeMismatchThrows) {
  ResourceVector a{1.0};
  const ResourceVector b{1.0, 2.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(ResourceVector, IsZeroDetectsZeros) {
  EXPECT_TRUE(ResourceVector({0.0, 0.0}).is_zero());
  EXPECT_FALSE(ResourceVector({0.0, 0.1}).is_zero());
  EXPECT_TRUE(ResourceVector({1e-12, -1e-12}).is_zero(1e-9));
}

TEST(ResourceVector, ClampNonnegativeZeroesNegatives) {
  ResourceVector v{-1.0, 2.0};
  v.clamp_nonnegative();
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(ResourceVector, MaxComponent) {
  EXPECT_DOUBLE_EQ(ResourceVector({1.0, 5.0, 3.0}).max_component(), 5.0);
  EXPECT_DOUBLE_EQ(ResourceVector({-2.0}).max_component(), 0.0);
}

TEST(ResourceVector, OutOfRangeIndexThrows) {
  const ResourceVector v{1.0};
  EXPECT_THROW(v[3], std::out_of_range);
}

TEST(ResourceVector, EqualityIsValueBased) {
  EXPECT_EQ(ResourceVector({1.0, 2.0}), ResourceVector({1.0, 2.0}));
  EXPECT_NE(ResourceVector({1.0, 2.0}), ResourceVector({1.0, 3.0}));
}

}  // namespace
}  // namespace sparcle
