/// \file test_gamma_property.cpp
/// Property check on the heart of Algorithm 2: GreedyEngine::gamma must
/// equal an independent, brute-force re-implementation of eq. (2) on
/// random partial placements.

#include <gtest/gtest.h>

#include "testutil.hpp"

#include <functional>
#include <limits>

#include "core/greedy_engine.hpp"
#include "core/widest_path.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Brute-force widest path by DFS over all simple paths.
double bf_width(const Network& net, NcpId from, NcpId to,
                const std::function<double(LinkId)>& weight) {
  if (from == to) return kInf;
  double best = -1;
  std::vector<char> visited(net.ncp_count(), 0);
  std::function<void(NcpId, double)> dfs = [&](NcpId v, double width) {
    if (v == to) {
      best = std::max(best, width);
      return;
    }
    visited[v] = 1;
    for (LinkId l : net.incident_links(v)) {
      if (!net.can_traverse(l, v)) continue;
      const double w = weight(l);
      if (!(w > 0)) continue;
      const NcpId u = net.other_end(l, v);
      if (!visited[u]) dfs(u, std::min(width, w));
    }
    visited[v] = 0;
  };
  dfs(from, kInf);
  return best;
}

/// Literal transcription of eq. (2) against the engine's committed state.
double reference_gamma(const GreedyEngine& e, CtId i, NcpId j) {
  const TaskGraph& g = e.graph();
  const Network& net = e.net();
  double rate = kInf;
  // Node term.
  for (std::size_t r = 0; r < g.schema().size(); ++r) {
    const double denom =
        g.ct(i).requirement[r] + e.load().ncp_load(j)[r];
    if (denom <= 0) continue;
    rate = std::min(rate, e.capacities().ncp(j)[r] / denom);
  }
  // Link terms over placed reachable CTs.
  for (CtId other = 0; other < static_cast<CtId>(g.ct_count()); ++other) {
    if (other == i || !e.placed(other)) continue;
    if (!g.related(i, other)) continue;
    const NcpId jo = e.host(other);
    if (jo == j) continue;
    // k = argmin bits over G(i, other).
    const auto between = g.tts_between(i, other);
    double min_bits = kInf;
    for (TtId k : between)
      min_bits = std::min(min_bits, g.tt(k).bits_per_unit);
    const double width = bf_width(net, j, jo, [&](LinkId l) {
      const double denom = min_bits + e.load().link_load(l);
      return denom > 0 ? e.capacities().link(l) / denom : kInf;
    });
    if (!(width > 0)) return 0.0;
    rate = std::min(rate, width);
  }
  return rate;
}

class GammaProperty : public ::testing::TestWithParam<int> {};

TEST_P(GammaProperty, EngineGammaMatchesEquationTwo) {
  Rng rng(testutil::test_seed() + GetParam());
  workload::ScenarioSpec spec;
  spec.topology = workload::TopologyKind::kStar;
  spec.graph = workload::GraphKind::kDiamond;
  spec.bottleneck = workload::BottleneckCase::kBalanced;
  spec.ncps = 6;
  const workload::Scenario sc = workload::make_scenario(spec, rng);
  const AssignmentProblem p = sc.problem();

  GreedyEngine engine(p);
  engine.commit_pins();
  // Commit a random half of the remaining CTs to random hosts.
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i) {
    if (engine.placed(i) || rng.bernoulli(0.5)) continue;
    engine.commit(i, static_cast<NcpId>(rng.uniform_int(0, 5)));
  }
  // Every unplaced (i, j) pair must agree with the reference.
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i) {
    if (engine.placed(i)) continue;
    for (NcpId j = 0; j < 6; ++j)
      EXPECT_NEAR(engine.gamma(i, j), reference_gamma(engine, i, j), 1e-9)
          << "seed " << GetParam() << " ct " << i << " ncp " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaProperty, ::testing::Range(1, 26));

}  // namespace
}  // namespace sparcle
