#include <gtest/gtest.h>

#include "baselines/cloud.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/greedy_baselines.hpp"
#include "baselines/heft.hpp"
#include "baselines/registry.hpp"
#include "baselines/tstorm.hpp"
#include "baselines/vne.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

using workload::BottleneckCase;
using workload::GraphKind;
using workload::Scenario;
using workload::ScenarioSpec;
using workload::TopologyKind;

Scenario small_scenario(int seed, BottleneckCase bn = BottleneckCase::kBalanced,
                        GraphKind gk = GraphKind::kDiamond) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kStar;
  spec.graph = gk;
  spec.bottleneck = bn;
  spec.ncps = 6;
  return workload::make_scenario(spec, rng);
}

/// Every baseline must produce a structurally valid, pin-respecting
/// placement whose reported rate equals the recomputed bottleneck rate.
class BaselineValidity : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineValidity, ProducesValidPlacements) {
  for (int seed = 1; seed <= 6; ++seed) {
    const Scenario sc = small_scenario(seed);
    const AssignmentProblem p = sc.problem();
    const auto assigner = make_assigner(GetParam(), seed);
    const AssignmentResult r = assigner->assign(p);
    ASSERT_TRUE(r.feasible) << GetParam() << " seed " << seed << ": "
                            << r.message;
    std::string err;
    EXPECT_TRUE(r.placement.validate(*sc.graph, sc.net, &err))
        << GetParam() << ": " << err;
    for (const auto& [ct, ncp] : sc.pinned)
      EXPECT_EQ(r.placement.ct_host(ct), ncp) << GetParam();
    EXPECT_NEAR(
        r.rate,
        bottleneck_rate(sc.net, *sc.graph, r.placement, p.capacities), 1e-12)
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(All, BaselineValidity,
                         ::testing::Values("SPARCLE", "GS", "GRand", "Random",
                                           "T-Storm", "R-Storm", "VNE",
                                           "HEFT"));

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_assigner("NoSuch"), std::invalid_argument);
}

TEST(Registry, ComparatorSetsAreResolvable) {
  for (const auto& n : simulation_comparators()) EXPECT_NO_THROW(make_assigner(n));
  for (const auto& n : testbed_comparators()) EXPECT_NO_THROW(make_assigner(n));
}

TEST(Baselines, NobodyBeatsExhaustiveOptimal) {
  for (int seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    ScenarioSpec spec;
    spec.topology = TopologyKind::kStar;
    spec.graph = GraphKind::kLinear;
    spec.bottleneck = BottleneckCase::kBalanced;
    spec.ncps = 4;
    spec.middle_cts = 3;
    const Scenario sc = workload::make_scenario(spec, rng);
    const AssignmentProblem p = sc.problem();
    const double best = ExhaustiveAssigner().assign(p).rate;
    for (const auto& name : simulation_comparators()) {
      const double rate = make_assigner(name, seed)->assign(p).rate;
      EXPECT_LE(rate, best + 1e-9) << name << " seed " << seed;
    }
  }
}

TEST(Baselines, SparcleMatchesGsInNcpBottleneck) {
  // §V-B: "the SPARCLE and the GS algorithms are equivalent in the
  // NCP-bottleneck case" — rates should agree on most instances.
  int agree = 0;
  const int trials = 20;
  for (int seed = 1; seed <= trials; ++seed) {
    const Scenario sc = small_scenario(seed, BottleneckCase::kNcp);
    const AssignmentProblem p = sc.problem();
    const double a = SparcleAssigner().assign(p).rate;
    const double b = GreedySortedAssigner().assign(p).rate;
    if (std::abs(a - b) < 1e-9 * std::max(1.0, a)) ++agree;
  }
  EXPECT_GE(agree, trials * 7 / 10);
}

TEST(Baselines, SparcleBeatsGsOnAverageInLinkBottleneck) {
  // The dynamic ranking's raison d'être (§V-B, Fig. 11(b)).
  double sparcle_sum = 0, gs_sum = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    const Scenario sc = small_scenario(seed, BottleneckCase::kLink);
    const AssignmentProblem p = sc.problem();
    sparcle_sum += SparcleAssigner().assign(p).rate;
    gs_sum += GreedySortedAssigner().assign(p).rate;
  }
  EXPECT_GT(sparcle_sum, gs_sum);
}

TEST(Baselines, CloudPlacesEverythingOnCloud) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("field", ResourceVector::scalar(10));
  net.add_ncp("cloud", ResourceVector::scalar(1000));
  net.add_link("l", 0, 1, 100);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(5));
  const CtId b = g.add_ct("b", ResourceVector::scalar(5));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sa", 10, s, a);
  g.add_tt("ab", 10, a, b);
  g.add_tt("bt", 10, b, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult r = CloudAssigner(1).assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.ct_host(a), 1);
  EXPECT_EQ(r.placement.ct_host(b), 1);
  // Bottleneck: the access link carries sa and bt: 100 / 20 = 5.
  EXPECT_DOUBLE_EQ(r.rate, 5.0);
}

TEST(Baselines, TStormBalancesExecutorCounts) {
  const Scenario sc = small_scenario(2);
  const AssignmentProblem p = sc.problem();
  const AssignmentResult r = TStormAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  // Slot cap: ceil(8 CTs / 6 NCPs) = 2 per NCP.
  std::vector<int> counts(sc.net.ncp_count(), 0);
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i)
    ++counts[r.placement.ct_host(i)];
  for (int c : counts) EXPECT_LE(c, 2);
}

TEST(Baselines, RandomIsSeedDeterministic) {
  const Scenario sc = small_scenario(4);
  const AssignmentProblem p = sc.problem();
  const AssignmentResult a = RandomAssigner(77).assign(p);
  const AssignmentResult b = RandomAssigner(77).assign(p);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.rate, b.rate);
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i)
    EXPECT_EQ(a.placement.ct_host(i), b.placement.ct_host(i));
}

TEST(Baselines, ExhaustiveRespectsSearchCap) {
  const Scenario sc = small_scenario(1);
  const AssignmentProblem p = sc.problem();
  // 6 unpinned CTs on 6 NCPs = 46656 assignments > cap of 1000.
  EXPECT_THROW(ExhaustiveAssigner(1000).assign(p), std::invalid_argument);
}

TEST(Baselines, ExhaustiveFindsTheObviousOptimum) {
  // Two hosts; the only free CT fits 10x better on host 1.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("small", ResourceVector::scalar(10));
  net.add_ncp("big", ResourceVector::scalar(100));
  net.add_link("l", 0, 1, 1e6);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId x = g.add_ct("x", ResourceVector::scalar(10));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sx", 1, s, x);
  g.add_tt("xt", 1, x, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult r = ExhaustiveAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.ct_host(x), 1);
  EXPECT_DOUBLE_EQ(r.rate, 10.0);
}

TEST(Baselines, HeftPrefersFastHostsForTheCriticalPath) {
  // One dominant CT and ample bandwidth: HEFT should pick the fast NCP.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("slow", ResourceVector::scalar(10));
  net.add_ncp("fast", ResourceVector::scalar(500));
  net.add_link("l", 0, 1, 1e6);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId x = g.add_ct("x", ResourceVector::scalar(50));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sx", 1, s, x);
  g.add_tt("xt", 1, x, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult r = HeftAssigner().assign(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.ct_host(x), 1);
}

TEST(Baselines, VneIsDeterministic) {
  const Scenario sc = small_scenario(9);
  const AssignmentProblem p = sc.problem();
  const AssignmentResult a = VneAssigner().assign(p);
  const AssignmentResult b = VneAssigner().assign(p);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.rate, b.rate);
}

TEST(Baselines, RStormIsCapacityAwareUnlikeTStorm) {
  // One giant and several tiny NCPs: T-Storm's slot balancing lands heavy
  // CTs on tiny nodes; R-Storm's resource distance prefers the giant.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src_site", ResourceVector::scalar(5));
  net.add_ncp("tiny1", ResourceVector::scalar(5));
  net.add_ncp("tiny2", ResourceVector::scalar(5));
  net.add_ncp("giant", ResourceVector::scalar(500));
  net.add_link("l1", 0, 1, 1e6);
  net.add_link("l2", 0, 2, 1e6);
  net.add_link("l3", 0, 3, 1e6);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId a = g.add_ct("a", ResourceVector::scalar(50));
  const CtId b = g.add_ct("b", ResourceVector::scalar(50));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sa", 1, s, a);
  g.add_tt("ab", 1, a, b);
  g.add_tt("bt", 1, b, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const double rstorm = make_assigner("R-Storm")->assign(p).rate;
  const double tstorm = make_assigner("T-Storm")->assign(p).rate;
  EXPECT_GT(rstorm, tstorm);
  // R-Storm puts both heavy CTs on the giant: rate = 500/100 = 5.
  EXPECT_NEAR(rstorm, 5.0, 1e-9);
}

TEST(Baselines, MultiResourceDegradesGsMoreThanSparcle) {
  // Fig. 12's story: with cpu+memory, GS's scalar sort loses track of the
  // scarce resource while SPARCLE's γ handles all types.
  double sparcle_sum = 0, gs_sum = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    const Scenario sc = small_scenario(seed, BottleneckCase::kMemory);
    const AssignmentProblem p = sc.problem();
    sparcle_sum += SparcleAssigner().assign(p).rate;
    gs_sum += GreedySortedAssigner().assign(p).rate;
  }
  EXPECT_GE(sparcle_sum, gs_sum);
}

}  // namespace
}  // namespace sparcle
