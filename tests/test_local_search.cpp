#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include "baselines/exhaustive.hpp"
#include "core/sparcle_assigner.hpp"
#include "workload/scenarios.hpp"

namespace sparcle {
namespace {

using namespace workload;

Scenario balanced_scenario(int seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.topology = TopologyKind::kLinear;
  spec.graph = GraphKind::kLinear;
  spec.bottleneck = BottleneckCase::kBalanced;
  spec.ncps = 4;
  spec.middle_cts = 4;
  return make_scenario(spec, rng);
}

TEST(EvaluateFixedHosts, MatchesManualPlacement) {
  const Scenario sc = balanced_scenario(1);
  const AssignmentProblem p = sc.problem();
  // All middle CTs on the source host.
  std::vector<NcpId> hosts(sc.graph->ct_count(),
                           sc.pinned.begin()->second);
  hosts[sc.graph->sinks()[0]] = sc.pinned.rbegin()->second;
  const AssignmentResult r = evaluate_fixed_hosts(p, hosts);
  ASSERT_TRUE(r.feasible);
  for (CtId i = 0; i < static_cast<CtId>(sc.graph->ct_count()); ++i)
    EXPECT_EQ(r.placement.ct_host(i), hosts[i]);
  std::string err;
  EXPECT_TRUE(r.placement.validate(*sc.graph, sc.net, &err)) << err;
}

TEST(EvaluateFixedHosts, RejectsWrongSize) {
  const Scenario sc = balanced_scenario(1);
  const AssignmentProblem p = sc.problem();
  EXPECT_THROW(evaluate_fixed_hosts(p, {0, 1}), std::invalid_argument);
}

TEST(LocalSearch, NeverWorsensTheStart) {
  for (int seed = 1; seed <= 20; ++seed) {
    const Scenario sc = balanced_scenario(seed);
    const AssignmentProblem p = sc.problem();
    const AssignmentResult start = SparcleAssigner().assign(p);
    ASSERT_TRUE(start.feasible);
    const AssignmentResult refined = refine_placement(p, start);
    ASSERT_TRUE(refined.feasible);
    EXPECT_GE(refined.rate, start.rate - 1e-9) << "seed " << seed;
    std::string err;
    EXPECT_TRUE(refined.placement.validate(*sc.graph, sc.net, &err)) << err;
    for (const auto& [ct, ncp] : sc.pinned)
      EXPECT_EQ(refined.placement.ct_host(ct), ncp);
  }
}

TEST(LocalSearch, NeverBeatsExhaustiveOptimal) {
  for (int seed = 1; seed <= 20; ++seed) {
    const Scenario sc = balanced_scenario(seed);
    const AssignmentProblem p = sc.problem();
    SparcleAssignerOptions opts;
    opts.local_search_rounds = 8;
    const double refined = SparcleAssigner(opts).assign(p).rate;
    const double best = ExhaustiveAssigner().assign(p).rate;
    EXPECT_LE(refined, best + 1e-9) << "seed " << seed;
  }
}

TEST(LocalSearch, ImprovesTheBalancedCaseOnAverage) {
  double plain_sum = 0, refined_sum = 0;
  for (int seed = 1; seed <= 40; ++seed) {
    const Scenario sc = balanced_scenario(seed);
    const AssignmentProblem p = sc.problem();
    SparcleAssignerOptions ls;
    ls.local_search_rounds = 8;
    plain_sum += SparcleAssigner().assign(p).rate;
    refined_sum += SparcleAssigner(ls).assign(p).rate;
  }
  EXPECT_GT(refined_sum, 1.05 * plain_sum);
}

TEST(LocalSearch, EscapesAnObviouslyBadStart) {
  // Start with everything crammed on the weakest NCP; the climber must
  // find the strong host for the heavy CT.
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("weak", ResourceVector::scalar(10));
  net.add_ncp("strong", ResourceVector::scalar(1000));
  net.add_link("l", 0, 1, 1e6);
  TaskGraph g(ResourceSchema::cpu_only());
  const CtId s = g.add_ct("s", ResourceVector::scalar(0));
  const CtId heavy = g.add_ct("heavy", ResourceVector::scalar(100));
  const CtId t = g.add_ct("t", ResourceVector::scalar(0));
  g.add_tt("sh", 10, s, heavy);
  g.add_tt("ht", 10, heavy, t);
  g.finalize();
  AssignmentProblem p;
  p.net = &net;
  p.graph = &g;
  p.capacities = CapacitySnapshot(net);
  p.pinned = {{s, 0}, {t, 0}};
  const AssignmentResult start = evaluate_fixed_hosts(p, {0, 0, 0});
  ASSERT_TRUE(start.feasible);
  EXPECT_DOUBLE_EQ(start.rate, 0.1);
  const AssignmentResult refined = refine_placement(p, start);
  EXPECT_EQ(refined.placement.ct_host(heavy), 1);
  EXPECT_DOUBLE_EQ(refined.rate, 10.0);
}

TEST(LocalSearch, RejectsInfeasibleStart) {
  const Scenario sc = balanced_scenario(1);
  const AssignmentProblem p = sc.problem();
  AssignmentResult bogus;
  EXPECT_THROW(refine_placement(p, bogus), std::invalid_argument);
}

}  // namespace
}  // namespace sparcle
