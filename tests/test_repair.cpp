/// \file test_repair.cpp
/// Scheduler::repair() — the incremental, usage-index-driven counterpart
/// of rebalance(): only applications whose paths cross a failed element
/// are touched, GR apps restore before BE apps, BE apps shed gracefully,
/// and the degradation bound escalates to a full rebalance.

#include <gtest/gtest.h>

#include "core/scheduler.hpp"

namespace sparcle {
namespace {

Network make_two_relay_net(double r1 = 10.0, double r2 = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(r1));
  net.add_ncp("r2", ResourceVector::scalar(r2));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

Application make_app(const std::string& name, QoeSpec qoe) {
  Application app;
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(5));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  app.graph = g;
  app.name = name;
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

TEST(Repair, NoopWithoutFailures) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  const auto report = sched.repair(ElementKey::ncp(1));
  EXPECT_TRUE(report.repaired.empty());
  EXPECT_TRUE(report.still_degraded.empty());
  EXPECT_EQ(report.paths_dropped, 0u);
  EXPECT_FALSE(report.fell_back);
  EXPECT_DOUBLE_EQ(sched.total_gr_rate(), 1.0);
}

TEST(Repair, RestoresGrGuaranteeOnTheOtherRelay) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  ASSERT_EQ(sched.degraded_gr_apps().size(), 1u);

  const auto report = sched.repair(ElementKey::ncp(host));
  ASSERT_EQ(report.repaired.size(), 1u);
  EXPECT_EQ(report.repaired[0], "gr");
  EXPECT_TRUE(report.still_degraded.empty());
  EXPECT_EQ(report.apps_touched, 1u);
  EXPECT_EQ(report.paths_dropped, 1u);
  EXPECT_GE(report.paths_added, 1u);
  EXPECT_TRUE(sched.degraded_gr_apps().empty());
  const PlacedApp& pa = sched.placed()[0];
  ASSERT_EQ(pa.paths.size(), 1u);
  EXPECT_NE(pa.paths[0].placement.ct_host(1), host);
  EXPECT_NEAR(pa.allocated_rate, 1.5, 1e-9);
}

TEST(Repair, TouchesOnlyAffectedApps) {
  // gr1 on relay 1 (pinned mid), gr2 on relay 2: failing relay 1 must not
  // touch gr2.
  Scheduler sched(make_two_relay_net());
  Application gr1 = make_app("gr1", QoeSpec::guaranteed_rate(1.0, 0.0));
  gr1.pinned[1] = 1;
  Application gr2 = make_app("gr2", QoeSpec::guaranteed_rate(1.0, 0.0));
  gr2.pinned[1] = 2;
  ASSERT_TRUE(sched.submit(gr1).admitted);
  ASSERT_TRUE(sched.submit(gr2).admitted);

  sched.mark_failed(ElementKey::ncp(1));
  const auto report = sched.repair(ElementKey::ncp(1));
  // gr1's mid is pinned to the dead relay: unrepairable, but gr2 is never
  // part of the working set.
  EXPECT_EQ(report.apps_touched, 1u);
  ASSERT_EQ(report.still_degraded.size(), 1u);
  EXPECT_EQ(report.still_degraded[0], "gr1");
  EXPECT_NEAR(sched.placed()[1].allocated_rate, 1.0, 1e-9);
}

TEST(Repair, BeShedsGracefullyAndReprovisions) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));

  const auto report = sched.repair(ElementKey::ncp(host));
  ASSERT_EQ(report.repaired.size(), 1u);
  EXPECT_EQ(report.repaired[0], "be");
  // Never evicted: still placed, with a fresh path on the survivor.
  ASSERT_EQ(sched.placed().size(), 1u);
  const PlacedApp& pa = sched.placed()[0];
  ASSERT_EQ(pa.paths.size(), 1u);
  EXPECT_NE(pa.paths[0].placement.ct_host(1), host);
  EXPECT_NEAR(pa.allocated_rate, 2.0, 0.02);  // surviving relay 10/5
}

TEST(Repair, BeStaysPlacedWhenNoCapacityRemains) {
  // The BE app's mid CT is pinned to the failed relay: it sheds down to
  // zero paths but is not evicted, and a recovery re-provisions it.
  Scheduler sched(make_two_relay_net());
  Application be = make_app("be", QoeSpec::best_effort(1.0));
  be.pinned[1] = 1;
  ASSERT_TRUE(sched.submit(be).admitted);
  sched.mark_failed(ElementKey::ncp(1));
  const auto report = sched.repair(ElementKey::ncp(1));
  ASSERT_EQ(report.still_degraded.size(), 1u);
  EXPECT_EQ(report.still_degraded[0], "be");
  ASSERT_EQ(sched.placed().size(), 1u);
  EXPECT_TRUE(sched.placed()[0].paths.empty());
  EXPECT_DOUBLE_EQ(sched.placed()[0].allocated_rate, 0.0);

  // Recovery repairs it back into service.
  sched.mark_recovered(ElementKey::ncp(1));
  const auto after = sched.repair(ElementKey::ncp(1));
  ASSERT_EQ(after.repaired.size(), 1u);
  EXPECT_GT(sched.placed()[0].allocated_rate, 0.0);
}

TEST(Repair, FallbackBoundTripsAndCanBeDisabled) {
  // Second relay too small to restore the guarantee: the incremental pass
  // degrades the global rate, so a zero-tolerance policy must escalate.
  SchedulerOptions strict;
  strict.repair.max_rate_degradation = 0.0;
  {
    Scheduler sched(make_two_relay_net(10.0, 2.0), strict);
    ASSERT_TRUE(
        sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
            .admitted);
    sched.mark_failed(ElementKey::ncp(1));
    const auto report = sched.repair(ElementKey::ncp(1));
    EXPECT_TRUE(report.fell_back);
    EXPECT_LT(report.global_rate_after + 1e-9, report.global_rate_before);
  }
  {
    SchedulerOptions no_fallback = strict;
    no_fallback.repair.allow_fallback = false;
    Scheduler sched(make_two_relay_net(10.0, 2.0), no_fallback);
    ASSERT_TRUE(
        sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
            .admitted);
    sched.mark_failed(ElementKey::ncp(1));
    const auto report = sched.repair(ElementKey::ncp(1));
    EXPECT_FALSE(report.fell_back);
    ASSERT_EQ(report.still_degraded.size(), 1u);
  }
}

TEST(Repair, ReleasesDeadReservations) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.5, 0.0)))
          .admitted);
  const NcpId host = sched.placed()[0].paths[0].placement.ct_host(1);
  sched.mark_failed(ElementKey::ncp(host));
  (void)sched.repair(ElementKey::ncp(host));
  sched.mark_recovered(ElementKey::ncp(host));
  EXPECT_DOUBLE_EQ(sched.gr_residual_capacities().ncp(host)[0], 10.0);
}

TEST(Repair, UsageIndexTracksPlacedPaths) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  const ElementUsageIndex& idx = sched.element_usage();
  // Both apps pin source/sink, so both appear under the source NCP.
  ASSERT_EQ(idx.users(ElementKey::ncp(0)).size(), 2u);
  EXPECT_EQ(idx.users(ElementKey::ncp(0))[0].app, 0u);
  EXPECT_EQ(idx.users(ElementKey::ncp(0))[1].app, 1u);
  // Unknown elements resolve to the empty list, not a throw.
  EXPECT_TRUE(idx.users(ElementKey::link(99)).empty());

  // After a remove, indices shift and the index must follow.
  ASSERT_TRUE(sched.remove("gr"));
  const ElementUsageIndex& after = sched.element_usage();
  ASSERT_EQ(after.users(ElementKey::ncp(0)).size(), 1u);
  EXPECT_EQ(after.users(ElementKey::ncp(0))[0].app, 0u);
}

TEST(Repair, RepeatedCyclesStayFeasible) {
  Scheduler sched(make_two_relay_net());
  ASSERT_TRUE(
      sched.submit(make_app("gr", QoeSpec::guaranteed_rate(1.0, 0.0)))
          .admitted);
  ASSERT_TRUE(
      sched.submit(make_app("be", QoeSpec::best_effort(1.0))).admitted);
  for (NcpId relay : {1, 2, 1, 2}) {
    sched.mark_failed(ElementKey::ncp(relay));
    (void)sched.repair(ElementKey::ncp(relay));
    sched.mark_recovered(ElementKey::ncp(relay));
    (void)sched.repair(ElementKey::ncp(relay));
    LoadMap total = LoadMap::zeros(sched.network());
    for (const PlacedApp& pa : sched.placed())
      for (std::size_t k = 0; k < pa.paths.size(); ++k)
        total.add_scaled(pa.paths[k].load, pa.path_rates[k]);
    for (NcpId j = 0; j < 4; ++j)
      ASSERT_LE(total.ncp_load(j)[0],
                sched.network().ncp(j).capacity[0] + 1e-6);
    ASSERT_GE(sched.total_gr_rate() + 1e-9, 1.0);
  }
}

}  // namespace
}  // namespace sparcle
