/// \file test_telemetry.cpp
/// The live telemetry plane: TimeSeriesWindow bucket semantics
/// (wrap-around, idle gaps, monotone-clock regressions), the Prometheus
/// text exposition contract (name/label escaping, cumulative
/// _bucket/_sum/_count histograms, deterministic ordering), and SLO
/// burn-rate evaluation.

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/slo.hpp"
#include "obs/time_series.hpp"

namespace sparcle::obs {
namespace {

using Clock = TimeSeriesWindow::Clock;

Clock::time_point at(Clock::time_point origin, double seconds) {
  return origin +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double>(seconds));
}

// ---------------------------------------------------------------------------
// TimeSeriesWindow

TEST(TimeSeriesWindow, RateCountsEventsOverTheWindow) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(10, origin);
  for (int i = 0; i < 6; ++i) w.add_at("arrivals", 1.0, at(origin, 0.5 * i));
  const auto r = w.rate_at("arrivals", at(origin, 2.5));
  EXPECT_DOUBLE_EQ(r.total, 6.0);
  EXPECT_EQ(r.samples, 6u);
  // 3 seconds of a 10s window are covered (process age), so the
  // denominator is 3, not 10.
  EXPECT_DOUBLE_EQ(r.per_second, 2.0);
}

TEST(TimeSeriesWindow, WeightedAddAccumulatesSumNotCount) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(10, origin);
  w.add_at("admitted", 5.0, at(origin, 0.0));
  const auto r = w.rate_at("admitted", at(origin, 0.0));
  EXPECT_DOUBLE_EQ(r.total, 5.0);
  EXPECT_EQ(r.samples, 1u);
}

TEST(TimeSeriesWindow, WrapAroundDropsBucketsOlderThanTheWindow) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(5, origin);
  // One event per second for 10 seconds; the 5-wide ring recycles each
  // bucket once.
  for (int s = 0; s < 10; ++s) w.add_at("e", 1.0, at(origin, s));
  const auto r = w.rate_at("e", at(origin, 9.0));
  EXPECT_DOUBLE_EQ(r.total, 5.0);  // seconds 5..9 only
  EXPECT_DOUBLE_EQ(r.per_second, 1.0);
}

TEST(TimeSeriesWindow, BucketRecyclingResetsPreviousLapCounts) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(5, origin);
  w.add_at("e", 100.0, at(origin, 0.0));
  // Second 5 maps onto the same ring slot as second 0; the old count must
  // not leak into the new bucket.
  w.add_at("e", 1.0, at(origin, 5.0));
  const auto r = w.rate_at("e", at(origin, 5.0));
  EXPECT_DOUBLE_EQ(r.total, 1.0);
  EXPECT_EQ(r.samples, 1u);
}

TEST(TimeSeriesWindow, IdleGapReadsZeroWithoutWrites) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(5, origin);
  w.add_at("e", 1.0, at(origin, 0.0));
  // 100 seconds later, with no writes in between, every bucket stamp has
  // fallen out of the window: the query must skip them, not wrap into
  // stale slots.
  const auto r = w.rate_at("e", at(origin, 100.0));
  EXPECT_DOUBLE_EQ(r.total, 0.0);
  EXPECT_EQ(r.samples, 0u);
}

TEST(TimeSeriesWindow, MonotoneGuardClampsBackwardsClock) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(10, origin);
  w.add_at("e", 1.0, at(origin, 8.0));
  // A time-point *before* the newest second ever seen is clamped forward
  // to second 8 — a regressing clock can't reopen a closed bucket.
  w.add_at("e", 1.0, at(origin, 3.0));
  const auto r = w.rate_at("e", at(origin, 8.0));
  EXPECT_DOUBLE_EQ(r.total, 2.0);
  // Queries clamp the same way: asking about the "past" reads the window
  // ending at the high-water second.
  const auto back = w.rate_at("e", at(origin, 0.0));
  EXPECT_DOUBLE_EQ(back.total, 2.0);
}

TEST(TimeSeriesWindow, ValueSeriesPercentilesAndMean) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(60, origin);
  double sum = 0.0;
  for (int v = 1; v <= 100; ++v) {
    w.observe_at("lat", static_cast<double>(v), at(origin, 0.5));
    sum += v;
  }
  const auto s = w.values_at("lat", at(origin, 1.0));
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, sum);
  EXPECT_DOUBLE_EQ(s.mean, sum / 100.0);
  // Log-bucket interpolation: rank 50 falls in the (32, 64] bucket, rank
  // 99 in (64, 128].
  EXPECT_GE(s.p50, 32.0);
  EXPECT_LE(s.p50, 64.0);
  EXPECT_GE(s.p99, 64.0);
  EXPECT_LE(s.p99, 128.0);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_TRUE(w.is_value_series("lat"));
  EXPECT_FALSE(w.is_value_series("nope"));
}

TEST(TimeSeriesWindow, UnknownSeriesReadsAllZero) {
  TimeSeriesWindow w(5);
  EXPECT_DOUBLE_EQ(w.rate("ghost").total, 0.0);
  EXPECT_EQ(w.values("ghost").count, 0u);
}

TEST(TimeSeriesWindow, ExportMaterializesGauges) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(10, origin);
  w.add_at("arrivals", 1.0, at(origin, 0.0));
  w.observe_at("lat", 42.0, at(origin, 0.0));
  MetricsSnapshot snap;
  w.export_to(snap, "service.window.", at(origin, 0.0));
  EXPECT_DOUBLE_EQ(snap.gauge_or("service.window.arrivals.total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("service.window.arrivals.per_second"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("service.window.lat.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("service.window.lat.mean"), 42.0);
  EXPECT_GT(snap.gauge_or("service.window.lat.p99"), 0.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("service.queue.depth"), "service_queue_depth");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("ok:name_1"), "ok:name_1");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(prometheus_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Prometheus, CountersGetTotalSuffixAndTypeLine) {
  MetricsRegistry reg;
  reg.counter("service.admitted").add(3);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE sparcle_service_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sparcle_service_admitted_total 3"), std::string::npos);
}

TEST(Prometheus, HistogramContractHoldsOnRealRegistry) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat.us", {1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 5000.0}) h.observe(v);
  reg.counter("events").add(7);
  reg.gauge("depth").set(2.5);
  const std::string text = to_prometheus(reg.snapshot());

  // validate_exposition enforces: cumulative buckets, +Inf == _count,
  // _sum/_count present.  It throws on violation.
  const auto samples = validate_exposition(text);
  double inf_bucket = -1.0, count = -1.0;
  for (const auto& s : samples) {
    if (s.name == "sparcle_lat_us_bucket" && s.labels.count("le") &&
        s.labels.at("le") == "+Inf")
      inf_bucket = s.value;
    if (s.name == "sparcle_lat_us_count") count = s.value;
  }
  EXPECT_DOUBLE_EQ(inf_bucket, 5.0);
  EXPECT_DOUBLE_EQ(count, 5.0);
}

TEST(Prometheus, OutputIsDeterministic) {
  MetricsRegistry reg;
  reg.counter("b").add(1);
  reg.counter("a").add(2);
  reg.gauge("z").set(1.0);
  reg.histogram("h", {1.0}).observe(0.5);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(to_prometheus(snap), to_prometheus(snap));
  // Counters come before gauges before histograms, names sorted.
  const std::string text = to_prometheus(snap);
  EXPECT_LT(text.find("sparcle_a_total"), text.find("sparcle_b_total"));
  EXPECT_LT(text.find("sparcle_b_total"), text.find("sparcle_z"));
  EXPECT_LT(text.find("sparcle_z"), text.find("sparcle_h_bucket"));
}

TEST(Prometheus, ParserRoundTripsSamplesWithLabels) {
  const std::string text =
      "# HELP x_bucket help\n"
      "x_bucket{le=\"1\"} 2\n"
      "x_bucket{le=\"+Inf\"} 4\n"
      "x_sum 3.5\n"
      "x_count 4\n";
  const auto samples = parse_exposition(text);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "x_bucket");
  EXPECT_EQ(samples[0].labels.at("le"), "1");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 3.5);
}

TEST(Prometheus, ParserRejectsMalformedLines) {
  EXPECT_THROW(parse_exposition("{no_name} 1\n"), std::runtime_error);
  EXPECT_THROW(parse_exposition("name_without_value\n"), std::runtime_error);
  EXPECT_THROW(parse_exposition("x{le=1} 2\n"), std::runtime_error);
  EXPECT_THROW(parse_exposition("x not_a_number\n"), std::runtime_error);
}

TEST(Prometheus, ValidatorRejectsBrokenHistograms) {
  // Non-cumulative buckets.
  EXPECT_THROW(validate_exposition("x_bucket{le=\"1\"} 5\n"
                                   "x_bucket{le=\"+Inf\"} 3\n"
                                   "x_sum 1\nx_count 3\n"),
               std::runtime_error);
  // +Inf bucket disagrees with _count.
  EXPECT_THROW(validate_exposition("x_bucket{le=\"1\"} 1\n"
                                   "x_bucket{le=\"+Inf\"} 4\n"
                                   "x_sum 1\nx_count 5\n"),
               std::runtime_error);
  // Missing +Inf bucket.
  EXPECT_THROW(validate_exposition("x_bucket{le=\"1\"} 1\n"
                                   "x_sum 1\nx_count 1\n"),
               std::runtime_error);
  // Missing _sum.
  EXPECT_THROW(validate_exposition("x_bucket{le=\"+Inf\"} 1\n"
                                   "x_count 1\n"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// SLO burn rate

TEST(Slo, RatioObjectiveWalksOkDegradedBreached) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(60, origin);
  for (int i = 0; i < 8; ++i) w.add_at("arrivals", 1.0, at(origin, 0.0));
  for (int i = 0; i < 3; ++i) w.add_at("rejected", 1.0, at(origin, 0.0));

  auto make = [](double target) {
    SloSpec spec;
    spec.name = "reject_ratio";
    spec.series = "rejected";
    spec.aggregate = SloSpec::Aggregate::kRatio;
    spec.denominator = "arrivals";
    spec.target = target;
    return spec;
  };

  {  // observed 0.375, target 0.5 -> burn 0.75 -> ok
    SloTracker t;
    t.add(make(0.5));
    const SloReport r = t.evaluate(w, at(origin, 0.0));
    ASSERT_EQ(r.targets.size(), 1u);
    EXPECT_NEAR(r.targets[0].observed, 0.375, 1e-12);
    EXPECT_EQ(r.targets[0].state, SloState::kOk);
    EXPECT_EQ(r.worst, SloState::kOk);
  }
  {  // target 0.25 -> burn 1.5 -> degraded
    SloTracker t;
    t.add(make(0.25));
    const SloReport r = t.evaluate(w, at(origin, 0.0));
    EXPECT_NEAR(r.targets[0].burn, 1.5, 1e-12);
    EXPECT_EQ(r.targets[0].state, SloState::kDegraded);
    EXPECT_EQ(r.worst, SloState::kDegraded);
  }
  {  // target 0.1 -> burn 3.75 >= 2 -> breached
    SloTracker t;
    t.add(make(0.1));
    const SloReport r = t.evaluate(w, at(origin, 0.0));
    EXPECT_EQ(r.targets[0].state, SloState::kBreached);
    EXPECT_EQ(r.worst, SloState::kBreached);
  }
}

TEST(Slo, LatencyP99ObjectiveAndMinSamples) {
  const auto origin = Clock::now();
  TimeSeriesWindow w(60, origin);
  SloSpec spec;
  spec.name = "admission_p99_us";
  spec.series = "lat";
  spec.aggregate = SloSpec::Aggregate::kP99;
  spec.target = 100.0;
  spec.min_samples = 5;
  SloTracker t;
  t.add(spec);

  // Too few samples: ok regardless of the value.
  w.observe_at("lat", 100000.0, at(origin, 0.0));
  EXPECT_EQ(t.evaluate(w, at(origin, 0.0)).worst, SloState::kOk);

  for (int i = 0; i < 10; ++i) w.observe_at("lat", 100000.0, at(origin, 0.0));
  const SloReport r = t.evaluate(w, at(origin, 0.0));
  EXPECT_EQ(r.worst, SloState::kBreached);
  ASSERT_NE(r.find("admission_p99_us"), nullptr);
  EXPECT_GT(r.find("admission_p99_us")->burn, 2.0);
}

TEST(Slo, DisabledAndExportedObjectives) {
  SloTracker t;
  SloSpec off;
  off.name = "off";
  off.series = "x";
  off.target = 0.0;  // disabled
  t.add(off);
  EXPECT_EQ(t.size(), 0u);

  const auto origin = Clock::now();
  TimeSeriesWindow w(60, origin);
  w.add_at("arrivals", 1.0, at(origin, 0.0));
  w.add_at("rejected", 1.0, at(origin, 0.0));
  SloSpec ratio;
  ratio.name = "reject_ratio";
  ratio.series = "rejected";
  ratio.aggregate = SloSpec::Aggregate::kRatio;
  ratio.denominator = "arrivals";
  ratio.target = 0.25;
  t.add(ratio);
  const SloReport report = t.evaluate(w, at(origin, 0.0));
  MetricsSnapshot snap;
  SloTracker::export_to(report, snap);
  EXPECT_DOUBLE_EQ(snap.gauge_or("slo.reject_ratio.observed"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("slo.reject_ratio.target"), 0.25);
  EXPECT_DOUBLE_EQ(snap.gauge_or("slo.reject_ratio.burn"), 4.0);
  EXPECT_DOUBLE_EQ(snap.gauge_or("slo.state"),
                   static_cast<double>(SloState::kBreached));
  // The exported gauges survive the exposition writer's sanitizer and the
  // validator.
  EXPECT_NO_THROW(validate_exposition(to_prometheus(snap)));
}

}  // namespace
}  // namespace sparcle::obs
