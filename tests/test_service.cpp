#include "service/scheduler_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "obs/obs.hpp"
#include "policy/policy.hpp"
#include "obs/prometheus.hpp"
#include "obs/slo.hpp"
#include "service/client.hpp"
#include "service/event_server.hpp"
#include "service/wire.hpp"
#include "workload/scenario_io.hpp"

namespace sparcle {
namespace {

using service::SchedulerService;
using service::ServiceOptions;
using service::ServiceResult;

// ---------------------------------------------------------------------------
// Fixtures

/// Source and destination sites joined by two disjoint relays (the
/// test_scheduler classic): src - r1 - dst and src - r2 - dst.
Network make_two_relay_net(double relay_cap = 10.0) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("src", ResourceVector::scalar(1.0));
  net.add_ncp("r1", ResourceVector::scalar(relay_cap));
  net.add_ncp("r2", ResourceVector::scalar(relay_cap));
  net.add_ncp("dst", ResourceVector::scalar(1.0));
  net.add_link("s1", 0, 1, 1000.0);
  net.add_link("1d", 1, 3, 1000.0);
  net.add_link("s2", 0, 2, 1000.0);
  net.add_link("2d", 2, 3, 1000.0);
  return net;
}

/// source -> mid (`mid_cpu` units) -> sink, 1-bit transports.
std::shared_ptr<const TaskGraph> make_relay_graph(double mid_cpu = 5.0) {
  auto g = std::make_shared<TaskGraph>(ResourceSchema::cpu_only());
  const CtId s = g->add_ct("source", ResourceVector::scalar(0));
  const CtId m = g->add_ct("mid", ResourceVector::scalar(mid_cpu));
  const CtId t = g->add_ct("sink", ResourceVector::scalar(0));
  g->add_tt("sm", 1.0, s, m);
  g->add_tt("mt", 1.0, m, t);
  g->finalize();
  return g;
}

Application make_app(const std::string& name, QoeSpec qoe,
                     double mid_cpu = 5.0) {
  Application app;
  app.name = name;
  app.graph = make_relay_graph(mid_cpu);
  app.qoe = qoe;
  app.pinned = {{0, 0}, {2, 3}};
  return app;
}

/// A star with `leaves` leaf NCPs around a fat hub; apps route
/// leaf -> hub -> leaf.  Deterministic, no RNG.
Network make_star_net(std::size_t leaves, double hub_cap, double leaf_cap) {
  Network net(ResourceSchema::cpu_only());
  net.add_ncp("hub", ResourceVector::scalar(hub_cap));
  for (std::size_t i = 0; i < leaves; ++i) {
    const NcpId leaf =
        net.add_ncp("leaf" + std::to_string(i), ResourceVector::scalar(leaf_cap));
    net.add_link("l" + std::to_string(i), 0, leaf, 1000.0);
  }
  return net;
}

Application make_star_app(const std::string& name, QoeSpec qoe,
                          NcpId src_leaf, NcpId dst_leaf, double mid_cpu) {
  Application app;
  app.name = name;
  app.graph = make_relay_graph(mid_cpu);
  app.qoe = qoe;
  app.pinned = {{0, src_leaf}, {2, dst_leaf}};
  return app;
}

// ---------------------------------------------------------------------------
// Wire protocol units

TEST(Wire, EscapeHandlesQuotesNewlinesAndControls) {
  EXPECT_EQ(service::wire::escape("app \"x\"\n\tend"),
            "app \\\"x\\\"\\n\\tend");
  EXPECT_EQ(service::wire::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Wire, LineRoundTripsStringsAndBareTokens) {
  std::map<std::string, std::string> fields;
  fields["verb"] = "submit";
  fields["app"] = "app a be 2\n  ct f 4\nend";
  fields["count"] = "42";
  fields["ratio"] = "0.5";
  fields["flag"] = "true";
  const std::string line = service::wire::to_line(fields);
  // Numbers and booleans are emitted unquoted, strings quoted+escaped.
  EXPECT_NE(line.find("\"count\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos) << line;
  EXPECT_NE(line.find("\\n"), std::string::npos) << line;
  EXPECT_EQ(service::wire::parse_line(line), fields);
}

TEST(Wire, ParseRejectsMalformedLines) {
  EXPECT_THROW(service::wire::parse_line("not json"), std::runtime_error);
  EXPECT_THROW(service::wire::parse_line("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(service::wire::parse_line("{\"a\":\"unterminated"),
               std::runtime_error);
  EXPECT_THROW(service::wire::parse_line("{\"a\":1 \"b\":2}"),
               std::runtime_error);
  EXPECT_NO_THROW(service::wire::parse_line("{}"));
}

TEST(Wire, ParseDecodesUnicodeEscapes) {
  const auto fields = service::wire::parse_line("{\"k\":\"a\\u0041b\"}");
  EXPECT_EQ(fields.at("k"), "aAb");
}

// ---------------------------------------------------------------------------
// Service basics

TEST(SchedulerService, SubmitRemoveQueryRoundTrip) {
  SchedulerService svc(make_two_relay_net());
  service::LocalClient client(svc);

  const ServiceResult admitted = client.submit(
      make_app("a", QoeSpec::best_effort(1.0)));
  ASSERT_EQ(admitted.status, ServiceResult::Status::kAdmitted)
      << admitted.reason;
  EXPECT_NEAR(admitted.rate, 2.0, 1e-3);  // relay cpu 10 / mid 5
  EXPECT_GT(admitted.latency_us, 0.0);

  // The future resolving happens-after the snapshot publish: the app is
  // immediately visible.
  auto snap = client.query();
  ASSERT_NE(snap->find("a"), nullptr);
  EXPECT_NEAR(snap->find("a")->allocated_rate, 2.0, 1e-3);
  EXPECT_FALSE(snap->find("a")->guaranteed);
  EXPECT_GE(snap->version, 1u);

  const ServiceResult removed = client.remove("a");
  EXPECT_EQ(removed.status, ServiceResult::Status::kRemoved);
  EXPECT_EQ(client.query()->find("a"), nullptr);

  const ServiceResult missing = client.remove("a");
  EXPECT_EQ(missing.status, ServiceResult::Status::kNotFound);
  EXPECT_NE(missing.reason.find("no placed app"), std::string::npos);
}

TEST(SchedulerService, RejectsDuplicateNames) {
  SchedulerService svc(make_two_relay_net());
  service::LocalClient client(svc);
  ASSERT_TRUE(client.submit(make_app("a", QoeSpec::best_effort(1.0))).ok());
  const ServiceResult dup =
      client.submit(make_app("a", QoeSpec::best_effort(2.0)));
  EXPECT_EQ(dup.status, ServiceResult::Status::kRejected);
  EXPECT_NE(dup.reason.find("already placed"), std::string::npos);
  EXPECT_EQ(svc.snapshot()->apps.size(), 1u);
}

TEST(SchedulerService, BatchedBestEffortResultsCarrySolvedRates) {
  // Stage several BE submits while paused so they land in ONE batch; the
  // deferred PF solve must still patch real rates into every result.
  ServiceOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);

  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(
        svc.submit(make_app("app" + std::to_string(i),
                            QoeSpec::best_effort(1.0))));
  EXPECT_EQ(svc.queue_depth(), 4u);
  svc.resume();

  double total = 0.0;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    ASSERT_EQ(r.status, ServiceResult::Status::kAdmitted) << r.reason;
    EXPECT_GT(r.rate, 0.0);  // 0 would mean the mid-batch placeholder leaked
    total += r.rate;
  }
  // Both relays fully used: 2 * cap 10 / mid 5 = 4 units/s aggregate.
  EXPECT_NEAR(total, 4.0, 1e-2);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch_seen, 4u);
  EXPECT_EQ(stats.resolves_saved, 3u);  // 4 deferred re-solves, 1 paid
  // The PF solver telemetry snapshot rode along with the batch counters.
  EXPECT_GT(stats.pf_solves, 0u);
  EXPECT_GT(stats.pf_newton_iters, 0u);
  EXPECT_EQ(svc.snapshot()->version, 1u);
}

TEST(SchedulerService, BatchedAndSerialAdmissionsAgree) {
  // The same arrival sequence through max_batch=1 and max_batch=16 must
  // produce identical admission outcomes and final allocations (batching
  // defers only the PF re-solve, never the admission decision).
  std::vector<Application> arrivals;
  for (int i = 0; i < 10; ++i)
    arrivals.push_back(make_app("be" + std::to_string(i),
                                QoeSpec::best_effort(1.0 + 0.5 * (i % 3))));
  arrivals.push_back(make_app("gr0", QoeSpec::guaranteed_rate(0.5, 0.0)));
  arrivals.push_back(make_app("gr1", QoeSpec::guaranteed_rate(0.25, 0.0)));

  auto run = [&](std::size_t max_batch) {
    ServiceOptions options;
    options.max_batch = max_batch;
    options.start_paused = true;
    options.validate_batches = true;
    SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);
    std::vector<std::future<ServiceResult>> futures;
    for (const Application& app : arrivals) futures.push_back(svc.submit(app));
    svc.resume();
    std::vector<ServiceResult> results;
    for (auto& f : futures) results.push_back(f.get());
    EXPECT_EQ(svc.stats().invariant_violations, 0u)
        << svc.stats().first_violation;
    return std::make_pair(std::move(results), svc.snapshot());
  };

  const auto [serial, serial_snap] = run(1);
  const auto [batched, batched_snap] = run(16);
  ASSERT_EQ(serial.size(), batched.size());
  // Priority classes reorder GR ahead of BE in the batched run, but the
  // outcome per app must match: compare via the final snapshots plus the
  // per-request statuses.
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].status, batched[i].status)
        << arrivals[i].name << ": " << serial[i].reason << " vs "
        << batched[i].reason;
  ASSERT_EQ(serial_snap->apps.size(), batched_snap->apps.size());
  EXPECT_NEAR(serial_snap->total_be_rate, batched_snap->total_be_rate, 1e-6);
  EXPECT_NEAR(serial_snap->total_gr_rate, batched_snap->total_gr_rate, 1e-6);
  EXPECT_NEAR(serial_snap->be_utility, batched_snap->be_utility, 1e-6);
  for (const service::AppView& view : serial_snap->apps) {
    const service::AppView* other = batched_snap->find(view.name);
    ASSERT_NE(other, nullptr) << view.name;
    EXPECT_NEAR(view.allocated_rate, other->allocated_rate, 1e-6)
        << view.name;
  }
}

// ---------------------------------------------------------------------------
// Priority classes

TEST(SchedulerService, GuaranteedRateQueuesAheadOfBestEffort) {
  ServiceOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);

  // Enqueue BE first, GR second; the class queues must still hand the GR
  // submit to the scheduler first (visible in admission order).
  auto be = svc.submit(make_app("be", QoeSpec::best_effort(1.0)));
  auto gr = svc.submit(make_app("gr", QoeSpec::guaranteed_rate(0.5, 0.0)));
  svc.resume();
  EXPECT_TRUE(be.get().ok());
  EXPECT_TRUE(gr.get().ok());
  const auto snap = svc.snapshot();
  ASSERT_EQ(snap->apps.size(), 2u);
  EXPECT_EQ(snap->apps[0].name, "gr");  // admission order = processing order
  EXPECT_EQ(snap->apps[1].name, "be");
}

TEST(SchedulerService, RemovesRunBeforeSubmitsInTheSameBatch) {
  SchedulerService svc(make_two_relay_net());
  service::LocalClient client(svc);
  ASSERT_TRUE(client.submit(make_app("x", QoeSpec::best_effort(1.0))).ok());

  // Enqueue the resubmit BEFORE the remove; the control class must still
  // win, so the resubmit sees the name free and is admitted.
  svc.pause();
  auto resubmit = svc.submit(make_app("x", QoeSpec::best_effort(2.0)));
  auto removal = svc.remove("x");
  svc.resume();
  EXPECT_EQ(removal.get().status, ServiceResult::Status::kRemoved);
  const ServiceResult r = resubmit.get();
  EXPECT_EQ(r.status, ServiceResult::Status::kAdmitted) << r.reason;
  ASSERT_EQ(svc.snapshot()->apps.size(), 1u);
  EXPECT_NEAR(svc.snapshot()->apps[0].priority, 2.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(SchedulerService, FullQueueRejectsImmediately) {
  obs::DecisionLog decisions;
  obs::Observability sinks;
  sinks.decisions = &decisions;
  obs::ScopedInstall obs_session(sinks);

  ServiceOptions options;
  options.queue_capacity = 2;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);

  auto a = svc.submit(make_app("a", QoeSpec::best_effort(1.0)));
  auto b = svc.submit(make_app("b", QoeSpec::best_effort(1.0)));
  auto c = svc.submit(make_app("c", QoeSpec::best_effort(1.0)));

  // The third future is ready without any scheduling having happened.
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const ServiceResult bounced = c.get();
  EXPECT_EQ(bounced.status, ServiceResult::Status::kQueueFull);
  EXPECT_NE(bounced.reason.find("queue_full"), std::string::npos);
  EXPECT_NE(bounced.reason.find("2/2"), std::string::npos);
  EXPECT_EQ(svc.stats().queue_full, 1u);

  svc.resume();
  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());

  // The bounce reached the decision log as a queue_reject row.
  bool found = false;
  for (const obs::Decision& d : decisions.snapshot())
    if (d.kind == obs::DecisionKind::kQueueReject && d.app == "c") {
      found = true;
      EXPECT_EQ(d.qoe, "BE");
      EXPECT_NE(d.reason.find("queue_full"), std::string::npos);
    }
  EXPECT_TRUE(found);
}

TEST(SchedulerService, ExpiredDeadlinesRejectAtDequeue) {
  obs::DecisionLog decisions;
  obs::Observability sinks;
  sinks.decisions = &decisions;
  obs::ScopedInstall obs_session(sinks);

  ServiceOptions options;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);

  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  auto expired = svc.submit(
      make_app("late", QoeSpec::guaranteed_rate(0.5, 0.0)), past);
  auto fresh = svc.submit(make_app("ok", QoeSpec::best_effort(1.0)));
  svc.resume();

  const ServiceResult r = expired.get();
  EXPECT_EQ(r.status, ServiceResult::Status::kDeadlineExceeded);
  EXPECT_NE(r.reason.find("deadline_exceeded"), std::string::npos);
  EXPECT_TRUE(fresh.get().ok());
  EXPECT_EQ(svc.stats().deadline_expired, 1u);
  EXPECT_EQ(svc.snapshot()->find("late"), nullptr);

  bool found = false;
  for (const obs::Decision& d : decisions.snapshot())
    if (d.kind == obs::DecisionKind::kQueueReject && d.app == "late") {
      found = true;
      EXPECT_EQ(d.qoe, "GR");
      EXPECT_NE(d.reason.find("deadline_exceeded"), std::string::npos);
    }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Lifecycle

TEST(SchedulerService, DrainWaitsForTheWholeQueue) {
  ServiceOptions options;
  options.max_batch = 4;
  SchedulerService svc(make_two_relay_net(100.0), SchedulerOptions{}, options);
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 12; ++i)
    futures.push_back(svc.submit(
        make_app("a" + std::to_string(i), QoeSpec::best_effort(1.0))));
  svc.drain();
  EXPECT_EQ(svc.queue_depth(), 0u);
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST(SchedulerService, StopDrainsQueuedWorkAndRejectsNewWork) {
  ServiceOptions options;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);
  auto queued = svc.submit(make_app("q", QoeSpec::best_effort(1.0)));
  svc.stop();  // un-pauses, drains, then joins
  EXPECT_EQ(queued.get().status, ServiceResult::Status::kAdmitted);

  const ServiceResult late = svc.submit(
      make_app("late", QoeSpec::best_effort(1.0))).get();
  EXPECT_EQ(late.status, ServiceResult::Status::kShutdown);
}

// ---------------------------------------------------------------------------
// TCP front end

TEST(EventServer, WireRoundTripOverRealSockets) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);  // port 0: ephemeral
  server.start();
  ASSERT_GT(server.port(), 0);

  service::TcpClient client("127.0.0.1", server.port());
  auto summary = client.query();
  EXPECT_EQ(summary.at("status"), "ok");
  EXPECT_EQ(summary.at("apps"), "0");

  const std::string block = workload::write_app_text(
      make_app("tcp_app", QoeSpec::best_effort(1.5)), svc.network());
  auto submitted = client.submit_app_text(block);
  EXPECT_EQ(submitted.at("status"), "admitted") << block;

  auto view = client.query("tcp_app");
  EXPECT_EQ(view.at("status"), "ok");
  EXPECT_EQ(view.at("class"), "be");
  EXPECT_EQ(view.at("priority"), "1.5");

  EXPECT_EQ(client.remove("tcp_app").at("status"), "removed");
  EXPECT_EQ(client.query("tcp_app").at("status"), "not_found");
  EXPECT_EQ(client.drain().at("apps"), "0");

  server.stop();
}

TEST(EventServer, HandleLineReportsProtocolErrors) {
  SchedulerService svc(make_two_relay_net());
  service::EventServer server(svc);  // never started: handle_line is direct

  auto expect_error = [&](const std::string& line, const char* substring) {
    const auto fields = service::wire::parse_line(server.handle_line(line));
    EXPECT_EQ(fields.at("status"), "error") << line;
    EXPECT_NE(fields.at("reason").find(substring), std::string::npos)
        << fields.at("reason");
  };
  expect_error("this is not json", "malformed");
  expect_error("{\"noverb\":1}", "missing 'verb'");
  expect_error("{\"verb\":\"frobnicate\"}", "unknown verb");
  expect_error("{\"verb\":\"submit\"}", "missing 'app'");
  expect_error("{\"verb\":\"submit\",\"app\":\"ncp rogue 5\"}",
               "network is fixed");
  expect_error("{\"verb\":\"remove\"}", "missing 'name'");
}

// ---------------------------------------------------------------------------
// Telemetry plane: request tracing, stage breakdown, SLOs, ops endpoint

TEST(Telemetry, TimelineStagesPartitionTheLatency) {
  // Batch several submits so the shared PF solve is visibly amortized.
  ServiceOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(svc.submit(
        make_app("app" + std::to_string(i), QoeSpec::best_effort(1.0))));
  svc.resume();

  std::set<std::uint64_t> traces;
  double shared_solve = -1.0;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.reason;
    const service::RequestTimeline& t = r.timeline;
    EXPECT_TRUE(traces.insert(t.trace_id).second);  // ids are unique
    EXPECT_GT(t.trace_id, 0u);
    EXPECT_GE(t.queue_us, 0.0);
    EXPECT_GE(t.batch_us, 0.0);
    EXPECT_GE(t.apply_us, 0.0);
    EXPECT_GE(t.solve_us, 0.0);
    EXPECT_GE(t.reply_us, 0.0);
    // The stages partition enqueue-to-reply: they are computed from the
    // same clock reads as latency_us, so the sum matches exactly (up to
    // floating-point rounding).
    EXPECT_NEAR(t.total_us(), r.latency_us, 1e-3) << r.latency_us;
    // Every request in the one batch reports the same shared solve cost.
    if (shared_solve < 0.0)
      shared_solve = t.solve_us;
    else
      EXPECT_DOUBLE_EQ(t.solve_us, shared_solve);
  }
}

TEST(Telemetry, ExpiredRequestsStillGetAPartitionedTimeline) {
  ServiceOptions options;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  auto expired = svc.submit(make_app("late", QoeSpec::best_effort(1.0)), past);
  svc.resume();
  const ServiceResult r = expired.get();
  ASSERT_EQ(r.status, ServiceResult::Status::kDeadlineExceeded);
  EXPECT_GT(r.timeline.trace_id, 0u);  // it was queued, so it was traced
  EXPECT_DOUBLE_EQ(r.timeline.apply_us, 0.0);  // never reached the scheduler
  EXPECT_DOUBLE_EQ(r.timeline.solve_us, 0.0);
  EXPECT_NEAR(r.timeline.total_us(), r.latency_us, 1e-3);
}

TEST(Telemetry, TraceIdLinksDecisionLogAndChromeTrace) {
  obs::DecisionLog decisions;
  obs::ChromeTraceCollector trace;
  obs::Observability sinks;
  sinks.decisions = &decisions;
  sinks.trace = &trace;
  obs::ScopedInstall obs_session(sinks);

  SchedulerService svc(make_two_relay_net());
  const ServiceResult r =
      svc.submit(make_app("a", QoeSpec::best_effort(1.0))).get();
  ASSERT_TRUE(r.ok()) << r.reason;
  const std::uint64_t id = r.timeline.trace_id;
  ASSERT_GT(id, 0u);

  // The scheduler's admit row carries the originating request's trace id
  // (stamped via the scheduling thread's ScopedTrace).
  bool found = false;
  for (const obs::Decision& d : decisions.snapshot())
    if (d.kind == obs::DecisionKind::kAdmit && d.app == "a") {
      found = true;
      EXPECT_EQ(d.trace, id);
    }
  EXPECT_TRUE(found);
  // ...and lands in the trailing CSV column.
  const std::string csv = decisions.to_csv();
  EXPECT_EQ(csv.find(obs::DecisionLog::kCsvHeader), 0u);
  EXPECT_NE(csv.find("," + std::to_string(id) + "\n"), std::string::npos);

  // The Chrome trace shows the request as one causally-linked flow: a
  // flow start at enqueue, the enqueue-to-reply span tagged with the
  // trace id, and a flow finish binding to it.
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"name\": \"service.request\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"trace_id\": " + std::to_string(id) + "}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": " + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(Telemetry, SloFlipsToDegradedUnderQueueOverload) {
  // 8 arrivals against a 5-deep paused queue: 3 bounce, the reject ratio
  // hits 0.375 against the default 0.25 ceiling — burn 1.5, degraded.
  ServiceOptions options;
  options.queue_capacity = 5;
  options.start_paused = true;
  SchedulerService svc(make_two_relay_net(), SchedulerOptions{}, options);
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(svc.submit(
        make_app("app" + std::to_string(i), QoeSpec::best_effort(1.0))));

  const obs::SloReport report = svc.slo_report();
  const obs::SloEvaluation* rej = report.find("reject_ratio");
  ASSERT_NE(rej, nullptr);
  EXPECT_NEAR(rej->observed, 0.375, 1e-9);
  EXPECT_NEAR(rej->burn, 1.5, 1e-9);
  EXPECT_EQ(rej->state, obs::SloState::kDegraded);
  EXPECT_EQ(report.worst, obs::SloState::kDegraded);

  // The health document and the exposition tell the same story — through
  // the wire verbs, as an operator would see them.
  service::EventServer server(svc);  // never started: handle_line is direct
  const auto stats_fields =
      service::wire::parse_line(server.handle_line("{\"verb\":\"stats\"}"));
  EXPECT_EQ(stats_fields.at("status"), "ok");
  EXPECT_EQ(stats_fields.at("slo_state"), "degraded");
  EXPECT_EQ(stats_fields.at("slo.reject_ratio.state"), "degraded");
  EXPECT_EQ(stats_fields.at("queue_depth"), "5");

  const auto metrics_fields =
      service::wire::parse_line(server.handle_line("{\"verb\":\"metrics\"}"));
  EXPECT_EQ(metrics_fields.at("status"), "ok");
  EXPECT_EQ(metrics_fields.at("format"), "prometheus-0.0.4");
  const auto samples = obs::validate_exposition(metrics_fields.at("body"));
  EXPECT_FALSE(samples.empty());
  EXPECT_NE(metrics_fields.at("body").find("sparcle_slo_reject_ratio_burn"),
            std::string::npos);

  svc.resume();
  for (auto& f : futures) (void)f.get();
}

TEST(Telemetry, StatsCoverEveryRegisteredServiceInstrument) {
  // ServiceStats is derived from the registry snapshot, so every counter
  // and gauge the service registers must appear in stats().metrics — a
  // newly added instrument can never silently miss the stats path.
  SchedulerService svc(make_two_relay_net());
  service::LocalClient client(svc);
  ASSERT_TRUE(client.submit(make_app("a", QoeSpec::best_effort(1.0))).ok());
  ASSERT_TRUE(client.remove("a").ok());
  svc.drain();

  const obs::MetricsSnapshot snap = svc.registry().snapshot();
  const service::ServiceStats stats = svc.stats();
  ASSERT_FALSE(snap.counters.empty());
  for (const auto& [name, value] : snap.counters) {
    ASSERT_EQ(stats.metrics.count(name), 1u) << name;
    EXPECT_DOUBLE_EQ(stats.metrics.at(name), static_cast<double>(value))
        << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    ASSERT_EQ(stats.metrics.count(name), 1u) << name;
    EXPECT_DOUBLE_EQ(stats.metrics.at(name), value) << name;
  }
  // The named legacy fields read from the same registry.
  EXPECT_EQ(stats.submits, snap.counter_or("service.submits"));
  EXPECT_EQ(stats.removes, snap.counter_or("service.removes"));
  EXPECT_EQ(stats.admitted, snap.counter_or("service.admitted"));
  EXPECT_EQ(stats.batches, snap.counter_or("service.batches"));
  // The latency histogram recorded both requests.
  const obs::Histogram* lat =
      svc.registry().find_histogram("service.admission_latency.us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 2u);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan target: CI runs this under
// -DSPARCLE_SANITIZE=thread)

TEST(SchedulerService, ConcurrentMixedTrafficStaysConsistent) {
  constexpr std::size_t kSubmitThreads = 4;
  constexpr std::size_t kAppsPerThread = 24;
  constexpr std::size_t kQueryThreads = 2;

  ServiceOptions options;
  options.max_batch = 8;
  options.validate_batches = true;  // invariant-check every snapshot
  SchedulerService svc(make_star_net(8, 400.0, 60.0), SchedulerOptions{},
                       options);

  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> admitted{0}, rejected{0}, removed{0};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kSubmitThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t j = 0; j < kAppsPerThread; ++j) {
        const std::string name =
            "t" + std::to_string(t) + "_a" + std::to_string(j);
        const NcpId src = 1 + static_cast<NcpId>((t + j) % 8);
        const NcpId dst = 1 + static_cast<NcpId>((t + 3 * j + 1) % 8);
        QoeSpec qoe = (j % 3 == 0) ? QoeSpec::guaranteed_rate(0.2, 0.0)
                                   : QoeSpec::best_effort(1.0 + (j % 4));
        const ServiceResult r =
            svc.submit(make_star_app(name, qoe, src,
                                     dst == src ? 1 + (dst % 8) : dst, 2.0))
                .get();
        if (r.status == ServiceResult::Status::kAdmitted) {
          ++admitted;
          if (j % 2 == 0) {
            if (svc.remove(name).get().status ==
                ServiceResult::Status::kRemoved)
              ++removed;
          }
        } else {
          ++rejected;
        }
      }
    });
  }
  for (std::size_t q = 0; q < kQueryThreads; ++q) {
    threads.emplace_back([&] {
      std::uint64_t last_version = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const auto snap = svc.snapshot();
        EXPECT_GE(snap->version, last_version);  // versions never regress
        last_version = snap->version;
        for (const service::AppView& view : snap->apps)
          EXPECT_FALSE(view.name.empty());
        (void)svc.stats();
        (void)svc.queue_depth();
        std::this_thread::yield();
      }
    });
  }
  for (std::size_t t = 0; t < kSubmitThreads; ++t) threads[t].join();
  stop_readers.store(true);
  for (std::size_t q = 0; q < kQueryThreads; ++q)
    threads[kSubmitThreads + q].join();

  svc.drain();
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.invariant_violations, 0u) << stats.first_violation;
  EXPECT_EQ(stats.submits, kSubmitThreads * kAppsPerThread);
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(stats.queue_full, 0u);

  // Every admitted-and-not-removed app is visible in the final snapshot.
  const auto snap = svc.snapshot();
  EXPECT_EQ(snap->apps.size(), admitted.load() - removed.load());
  std::set<std::string> names;
  for (const service::AppView& view : snap->apps)
    EXPECT_TRUE(names.insert(view.name).second) << "duplicate " << view.name;
  EXPECT_EQ(snap->version, stats.batches);
  svc.stop();
}

// ---------------------------------------------------------------------------
// WorkerPool::resolve_threads (satellite: SPARCLE_THREADS knob)

// ---------------------------------------------------------------------------
// Admission-ordering policy (SchedulingPolicy::pick_next, decision point 1)

/// Stages a mixed GR/BE workload in one paused batch under `policy` and
/// returns (status, rate) per submit plus the final admission-order
/// snapshot — the comparable trace of the service's ordering decisions.
std::pair<std::vector<std::pair<ServiceResult::Status, double>>,
          std::vector<std::pair<std::string, double>>>
run_policy_trace(std::shared_ptr<const policy::SchedulingPolicy> policy) {
  SchedulerOptions sched;
  sched.policy = std::move(policy);
  ServiceOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  SchedulerService svc(make_star_net(4, 10.0, 1.0), sched, options);

  // GR demand sums past the hub capacity (4 + 3 + 2 + 3 > 10), so WHICH
  // app rejects depends entirely on the admission order; the BE pair's PF
  // split rides on what admitted before them.
  const double mids[] = {4.0, 3.0, 2.0, 3.0};
  std::vector<std::future<ServiceResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(svc.submit(
        make_star_app("gr" + std::to_string(i),
                      QoeSpec::guaranteed_rate(1.0, 0.0), 1, 2, mids[i])));
  for (int i = 0; i < 2; ++i)
    futures.push_back(svc.submit(make_star_app(
        "be" + std::to_string(i), QoeSpec::best_effort(1.0 + i), 3, 4, 1.0)));
  svc.resume();

  std::vector<std::pair<ServiceResult::Status, double>> results;
  for (auto& f : futures) {
    const ServiceResult r = f.get();
    results.emplace_back(r.status, r.rate);
  }
  std::vector<std::pair<std::string, double>> placed;
  for (const auto& view : svc.snapshot()->apps)
    placed.emplace_back(view.name, view.allocated_rate);
  svc.stop();
  return {std::move(results), std::move(placed)};
}

TEST(ServicePolicy, DefaultPolicyIsBitIdenticalToNoPolicy) {
  // DefaultPolicy must reproduce the FIFO fast path bit for bit: same
  // statuses, same rates (exact ==, no tolerance), same admission order.
  const auto fifo = run_policy_trace(nullptr);
  const auto dflt = run_policy_trace(std::make_shared<policy::DefaultPolicy>());
  EXPECT_EQ(fifo.first, dflt.first);
  EXPECT_EQ(fifo.second, dflt.second);
}

TEST(ServicePolicy, ShortestJobFirstReordersAStagedBatch) {
  SchedulerOptions sched;
  sched.policy = std::make_shared<policy::ShortestJobFirstPolicy>();
  ServiceOptions options;
  options.max_batch = 16;
  options.start_paused = true;
  SchedulerService svc(make_star_net(4, 10.0, 1.0), sched, options);

  // Arrival order big, s1, s2 — SJF must admit the small ones first.
  std::vector<std::future<ServiceResult>> futures;
  futures.push_back(svc.submit(
      make_star_app("big", QoeSpec::guaranteed_rate(1.0, 0.0), 1, 2, 8.0)));
  futures.push_back(svc.submit(
      make_star_app("s1", QoeSpec::guaranteed_rate(1.0, 0.0), 2, 3, 1.0)));
  futures.push_back(svc.submit(
      make_star_app("s2", QoeSpec::guaranteed_rate(1.0, 0.0), 3, 4, 1.0)));
  svc.resume();
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, ServiceResult::Status::kAdmitted);

  const auto snap = svc.snapshot();
  ASSERT_EQ(snap->apps.size(), 3u);
  EXPECT_EQ(snap->apps[0].name, "s1");
  EXPECT_EQ(snap->apps[1].name, "s2");
  EXPECT_EQ(snap->apps[2].name, "big");
}

TEST(WorkerPool, ResolveThreadsHonorsExplicitRequestFirst) {
  ::setenv("SPARCLE_THREADS", "3", 1);
  EXPECT_EQ(WorkerPool::resolve_threads(2), 2u);  // explicit beats env
  ::unsetenv("SPARCLE_THREADS");
}

TEST(WorkerPool, ResolveThreadsReadsEnvOverride) {
  ::setenv("SPARCLE_THREADS", "3", 1);
  EXPECT_EQ(WorkerPool::resolve_threads(0), 3u);
  EXPECT_EQ(WorkerPool::resolve_threads(0, /*cap=*/2), 3u);  // env beats cap
  ::setenv("SPARCLE_THREADS", "garbage", 1);
  EXPECT_GE(WorkerPool::resolve_threads(0), 1u);  // unparsable: fall through
  ::unsetenv("SPARCLE_THREADS");
}

TEST(WorkerPool, ResolveThreadsDefaultsToHardwareWithOptionalCap) {
  ::unsetenv("SPARCLE_THREADS");
  const unsigned uncapped = WorkerPool::resolve_threads(0);
  EXPECT_GE(uncapped, 1u);
  EXPECT_LE(WorkerPool::resolve_threads(0, 2), 2u);
  EXPECT_GE(WorkerPool::resolve_threads(0, 2), 1u);
}

}  // namespace
}  // namespace sparcle
