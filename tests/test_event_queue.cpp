#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sparcle::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  while (q.step()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(1.0, [&] { fired.push_back(1); });
  const EventQueue::Token t = q.schedule(2.0, [&] { fired.push_back(2); });
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.cancel(t);
  while (q.step()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelAfterFireIsHarmless) {
  EventQueue q;
  int fired = 0;
  const EventQueue::Token t = q.schedule(1.0, [&] { ++fired; });
  ASSERT_TRUE(q.step());
  q.cancel(t);  // already fired: no effect, no crash
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<double> fired;
  q.schedule(1.0, [&] { fired.push_back(1.0); });
  q.schedule(5.0, [&] { fired.push_back(5.0); });
  q.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  // The 5.0 event survives and fires on a later horizon.
  q.run_until(10.0);
  EXPECT_EQ(fired.size(), 2u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) q.schedule(q.now() + 1.0, chain);
  };
  q.schedule(0.0, chain);
  q.run_until(100.0);
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, NowAdvancesOnlyThroughEvents) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.schedule(7.5, [] {});
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // scheduling does not advance time
  q.step();
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, EmptyQueueStepReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace sparcle::sim
