#include "workload/scenario_io.hpp"

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "model/dot_export.hpp"
#include "workload/rng.hpp"
#include "testutil.hpp"

namespace sparcle {
namespace {

using workload::parse_apps_text;
using workload::parse_scenario_text;
using workload::ScenarioFile;
using workload::write_app_text;
using workload::write_scenario;

const char* kBasic = R"(
# comment line
resources cpu

ncp a 100
ncp b 50 fail=0.1
link ab a b 1e6 fail=0.02

app stream be 2 0.9
  ct src 0
  ct work 10
  ct dst 0
  tt raw 1000 src work
  tt out 10 work dst
  pin src a
  pin dst b
end
)";

TEST(ScenarioIo, ParsesBasicScenario) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  ASSERT_EQ(sf.net.ncp_count(), 2u);
  EXPECT_EQ(sf.net.ncp(0).name, "a");
  EXPECT_DOUBLE_EQ(sf.net.ncp(0).capacity[0], 100.0);
  EXPECT_DOUBLE_EQ(sf.net.ncp(1).fail_prob, 0.1);
  ASSERT_EQ(sf.net.link_count(), 1u);
  EXPECT_DOUBLE_EQ(sf.net.link(0).bandwidth, 1e6);
  EXPECT_DOUBLE_EQ(sf.net.link(0).fail_prob, 0.02);
  ASSERT_EQ(sf.apps.size(), 1u);
  const Application& app = sf.apps[0];
  EXPECT_EQ(app.name, "stream");
  EXPECT_EQ(app.qoe.cls, QoeClass::kBestEffort);
  EXPECT_DOUBLE_EQ(app.qoe.priority, 2.0);
  EXPECT_DOUBLE_EQ(app.qoe.availability, 0.9);
  EXPECT_EQ(app.graph->ct_count(), 3u);
  EXPECT_EQ(app.graph->tt_count(), 2u);
  EXPECT_EQ(app.pinned.size(), 2u);
}

TEST(ScenarioIo, ParsesGuaranteedRateApps) {
  const std::string text = R"(
ncp a 100
ncp b 100
link ab a b 10
app g gr 2.5 0.85
  ct s 0
  ct t 1
  tt st 1 s t
  pin s a
  pin t b
end
)";
  const ScenarioFile sf = parse_scenario_text(text);
  ASSERT_EQ(sf.apps.size(), 1u);
  EXPECT_EQ(sf.apps[0].qoe.cls, QoeClass::kGuaranteedRate);
  EXPECT_DOUBLE_EQ(sf.apps[0].qoe.min_rate, 2.5);
  EXPECT_DOUBLE_EQ(sf.apps[0].qoe.min_rate_availability, 0.85);
}

TEST(ScenarioIo, ParsesMultiResourceSchema) {
  const std::string text = R"(
resources cpu memory
ncp a 100 32
ncp b 50 16
link ab a b 10
app x be 1
  ct s 0 0
  ct w 10 4
  tt sw 5 s w
  pin s a
  pin w b
end
)";
  const ScenarioFile sf = parse_scenario_text(text);
  EXPECT_EQ(sf.net.schema().size(), 2u);
  EXPECT_DOUBLE_EQ(sf.net.ncp(0).capacity[1], 32.0);
  EXPECT_DOUBLE_EQ(sf.apps[0].graph->ct(1).requirement[1], 4.0);
}

TEST(ScenarioIo, RoundTripsThroughWriter) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  const std::string text = write_scenario(sf);
  const ScenarioFile again = parse_scenario_text(text);
  ASSERT_EQ(again.net.ncp_count(), sf.net.ncp_count());
  ASSERT_EQ(again.net.link_count(), sf.net.link_count());
  for (NcpId j = 0; j < static_cast<NcpId>(sf.net.ncp_count()); ++j) {
    EXPECT_EQ(again.net.ncp(j).name, sf.net.ncp(j).name);
    EXPECT_EQ(again.net.ncp(j).capacity, sf.net.ncp(j).capacity);
    EXPECT_DOUBLE_EQ(again.net.ncp(j).fail_prob, sf.net.ncp(j).fail_prob);
  }
  ASSERT_EQ(again.apps.size(), sf.apps.size());
  const Application &a = again.apps[0], &b = sf.apps[0];
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.graph->ct_count(), b.graph->ct_count());
  EXPECT_EQ(a.graph->tt_count(), b.graph->tt_count());
  EXPECT_EQ(a.pinned, b.pinned);
  EXPECT_DOUBLE_EQ(a.qoe.priority, b.qoe.priority);
}

/// Full structural equality of two scenarios, exact on every double: the
/// writer now emits shortest-round-trip decimals, so nothing may drift.
void expect_identical(const ScenarioFile& a, const ScenarioFile& b) {
  ASSERT_EQ(a.net.schema().names(), b.net.schema().names());
  ASSERT_EQ(a.net.ncp_count(), b.net.ncp_count());
  for (NcpId j = 0; j < static_cast<NcpId>(a.net.ncp_count()); ++j) {
    EXPECT_EQ(a.net.ncp(j).name, b.net.ncp(j).name);
    EXPECT_EQ(a.net.ncp(j).capacity, b.net.ncp(j).capacity);
    EXPECT_EQ(a.net.ncp(j).fail_prob, b.net.ncp(j).fail_prob);
  }
  ASSERT_EQ(a.net.link_count(), b.net.link_count());
  for (LinkId l = 0; l < static_cast<LinkId>(a.net.link_count()); ++l) {
    EXPECT_EQ(a.net.link(l).name, b.net.link(l).name);
    EXPECT_EQ(a.net.link(l).a, b.net.link(l).a);
    EXPECT_EQ(a.net.link(l).b, b.net.link(l).b);
    EXPECT_EQ(a.net.link(l).bandwidth, b.net.link(l).bandwidth);
    EXPECT_EQ(a.net.link(l).fail_prob, b.net.link(l).fail_prob);
    EXPECT_EQ(a.net.link(l).directed, b.net.link(l).directed);
  }
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    const Application &x = a.apps[i], &y = b.apps[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.qoe.cls, y.qoe.cls);
    EXPECT_EQ(x.qoe.priority, y.qoe.priority);
    EXPECT_EQ(x.qoe.availability, y.qoe.availability);
    EXPECT_EQ(x.qoe.min_rate, y.qoe.min_rate);
    EXPECT_EQ(x.qoe.min_rate_availability, y.qoe.min_rate_availability);
    EXPECT_EQ(x.pinned, y.pinned);
    ASSERT_EQ(x.graph->ct_count(), y.graph->ct_count());
    for (CtId c = 0; c < static_cast<CtId>(x.graph->ct_count()); ++c) {
      EXPECT_EQ(x.graph->ct(c).name, y.graph->ct(c).name);
      EXPECT_EQ(x.graph->ct(c).requirement, y.graph->ct(c).requirement);
    }
    ASSERT_EQ(x.graph->tt_count(), y.graph->tt_count());
    for (TtId k = 0; k < static_cast<TtId>(x.graph->tt_count()); ++k) {
      EXPECT_EQ(x.graph->tt(k).name, y.graph->tt(k).name);
      EXPECT_EQ(x.graph->tt(k).bits_per_unit, y.graph->tt(k).bits_per_unit);
      EXPECT_EQ(x.graph->tt(k).src, y.graph->tt(k).src);
      EXPECT_EQ(x.graph->tt(k).dst, y.graph->tt(k).dst);
    }
  }
}

/// Property: parse -> write -> parse is the identity (up to ids, which
/// the parser assigns in file order) on randomly generated scenarios with
/// non-representable decimals, failure probabilities, directed links, and
/// both QoE classes; and write is a fixed point (byte-identical on the
/// second pass).
class ScenarioRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioRoundTrip, GeneratedScenarioSurvivesExactly) {
  Rng rng(testutil::test_seed() + GetParam());
  check::FuzzOptions options;
  const ScenarioFile scenario = check::random_scenario(rng, options);

  const std::string text = write_scenario(scenario);
  const ScenarioFile reparsed = parse_scenario_text(text);
  expect_identical(scenario, reparsed);
  EXPECT_EQ(write_scenario(reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioRoundTrip, ::testing::Range(0, 25));

struct BadCase {
  const char* name;
  const char* text;
  const char* expect;  // substring of the error
};

class ScenarioIoErrors : public ::testing::TestWithParam<BadCase> {};

TEST_P(ScenarioIoErrors, RejectsMalformedInput) {
  try {
    parse_scenario_text(GetParam().text);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(GetParam().expect),
              std::string::npos)
        << "actual error: " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioIoErrors,
    ::testing::Values(
        BadCase{"empty", "", "no NCPs"},
        BadCase{"unknown", "frobnicate x\n", "unknown directive"},
        BadCase{"dup_ncp", "ncp a 1\nncp a 2\n", "duplicate NCP"},
        BadCase{"bad_cap", "ncp a lots\n", "bad capacity"},
        BadCase{"link_unknown_ncp", "ncp a 1\nlink l a b 5\n",
                "unknown NCP"},
        BadCase{"ct_outside_app", "ncp a 1\nct x 1\n", "outside an app"},
        BadCase{"unterminated",
                "ncp a 1\napp x be 1\n ct s 0\n pin s a\n",
                "unterminated app"},
        BadCase{"nested_app", "ncp a 1\napp x be 1\napp y be 1\n",
                "nested 'app'"},
        BadCase{"tt_unknown_ct",
                "ncp a 1\napp x be 1\n ct s 0\n tt t 1 s ghost\nend\n",
                "unknown CT"},
        BadCase{"pin_unknown_ncp",
                "ncp a 1\napp x be 1\n ct s 0\n ct t 1\n tt st 1 s t\n "
                "pin s nowhere\n pin t a\nend\n",
                "unknown NCP"},
        BadCase{"unpinned_source",
                "ncp a 1\napp x be 1\n ct s 0\n ct t 1\n tt st 1 s t\n "
                "pin t a\nend\n",
                "not pinned"},
        BadCase{"cycle",
                "ncp a 1\napp x be 1\n ct s 1\n ct t 1\n tt st 1 s t\n "
                "tt ts 1 t s\nend\n",
                "cycle"},
        BadCase{"resources_late", "ncp a 1\nresources cpu\n",
                "must precede"},
        BadCase{"bad_class", "ncp a 1\napp x vip 1\n", "'be' or 'gr'"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

TEST(ScenarioIo, ErrorsCarryFileAndLine) {
  try {
    parse_scenario_text("ncp a 1\nncp b 2\nbogus\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    // Default source name, then ":<line>:" in compiler-style format.
    EXPECT_NE(std::string(e.what()).find("<scenario>:3:"), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(ScenarioIo, ErrorsUseCallerSuppliedSourceName) {
  try {
    parse_scenario_text("ncp a 1\nncp a 2\n", "edge.scn");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("edge.scn:2:"), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(ScenarioIo, ErrorsQuoteTheOffendingToken) {
  try {
    parse_scenario_text("ncp a 1\napp x vip 1\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<scenario>:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("'vip'"), std::string::npos) << what;
  }
}

TEST(ScenarioIo, ParseAppsTextResolvesAgainstExistingNetwork) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  const std::string block = write_app_text(sf.apps.at(0), sf.net);
  const std::vector<Application> apps =
      parse_apps_text(block, sf.net, "wire");
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].name, sf.apps[0].name);
  EXPECT_EQ(apps[0].pinned, sf.apps[0].pinned);
  EXPECT_EQ(write_app_text(apps[0], sf.net), block);
}

TEST(ScenarioIo, ParseAppsTextRejectsNetworkDirectives) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  try {
    parse_apps_text("ncp rogue 5\n", sf.net, "wire");
    FAIL();
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wire:1:"), std::string::npos) << what;
    EXPECT_NE(what.find("network is fixed"), std::string::npos) << what;
  }
}

TEST(ScenarioIo, ParseAppsTextRequiresAnAppBlock) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  EXPECT_THROW(parse_apps_text("# just a comment\n", sf.net),
               std::runtime_error);
}

TEST(ScenarioIo, MissingFileThrows) {
  EXPECT_THROW(workload::load_scenario_file("/no/such/file.scn"),
               std::runtime_error);
}

TEST(DotExport, NetworkContainsAllElements) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  const std::string dot = network_to_dot(sf.net);
  EXPECT_NE(dot.find("graph network"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("\"b\""), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -- \"b\""), std::string::npos);
}

TEST(DotExport, TaskGraphIsDirected) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  const std::string dot = task_graph_to_dot(*sf.apps[0].graph);
  EXPECT_NE(dot.find("digraph taskgraph"), std::string::npos);
  EXPECT_NE(dot.find("\"src\" -> \"work\""), std::string::npos);
  EXPECT_NE(dot.find("\"work\" -> \"dst\""), std::string::npos);
}

TEST(DotExport, PlacementShowsHostedCts) {
  const ScenarioFile sf = parse_scenario_text(kBasic);
  const TaskGraph& g = *sf.apps[0].graph;
  Placement p(g);
  p.place_ct(0, 0);
  p.place_ct(1, 0);
  p.place_ct(2, 1);
  p.place_tt(0, {});
  p.place_tt(1, {0});
  const std::string dot = placement_to_dot(sf.net, g, p);
  EXPECT_NE(dot.find("src, work"), std::string::npos);  // hosted on a
  EXPECT_NE(dot.find("{out}"), std::string::npos);      // TT on the link
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

TEST(ScenarioIo, RegionLabelsRoundTripThroughWriter) {
  ScenarioFile sf;
  sf.net = Network(ResourceSchema::cpu_only());
  sf.net.add_ncp("a0", ResourceVector::scalar(4.0), 0.0, "r0");
  sf.net.add_ncp("a1", ResourceVector::scalar(8.0), 0.05, "r0");
  sf.net.add_ncp("b0", ResourceVector::scalar(2.0), 0.0, "r1");
  sf.net.add_ncp("u", ResourceVector::scalar(1.0));  // unlabeled survives
  sf.net.add_link("ab", 0, 2, 100.0);

  const std::string text = write_scenario(sf);
  EXPECT_NE(text.find("region=r0"), std::string::npos) << text;
  const ScenarioFile again = parse_scenario_text(text);
  ASSERT_EQ(again.net.ncp_count(), 4u);
  EXPECT_EQ(again.net.ncp(0).region, "r0");
  EXPECT_EQ(again.net.ncp(1).region, "r0");
  EXPECT_DOUBLE_EQ(again.net.ncp(1).fail_prob, 0.05);  // fail= kept too
  EXPECT_EQ(again.net.ncp(2).region, "r1");
  EXPECT_EQ(again.net.ncp(3).region, "");
}

TEST(ScenarioIo, RegionTokenParsesInEitherOrderWithFail) {
  const ScenarioFile sf = parse_scenario_text(R"(
resources cpu
ncp x 10 region=west fail=0.1
ncp y 10 fail=0.2 region=east
link xy x y 100
)");
  EXPECT_EQ(sf.net.ncp(0).region, "west");
  EXPECT_DOUBLE_EQ(sf.net.ncp(0).fail_prob, 0.1);
  EXPECT_EQ(sf.net.ncp(1).region, "east");
  EXPECT_DOUBLE_EQ(sf.net.ncp(1).fail_prob, 0.2);
}

}  // namespace
}  // namespace sparcle

