#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>

/// \file testutil.hpp
/// Shared helpers for randomized tests: one env-overridable base seed so
/// any CI failure reproduces locally with a single variable:
///
///     SPARCLE_TEST_SEED=1234 ./build/tests/test_scheduler_fuzz
///
/// Every fuzz/property test derives its Rng seeds from test_seed()
/// (usually `test_seed() + GetParam()`), so the override reaches all of
/// them; the effective base is logged once per process so the
/// reproduction command is always visible in CI output.

namespace sparcle::testutil {

/// The base seed offset: SPARCLE_TEST_SEED when set, else 0 (the fixed
/// default that CI runs).
inline std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("SPARCLE_TEST_SEED");
    const std::uint64_t s =
        (env && *env) ? std::strtoull(env, nullptr, 0) : 0;
    std::cout << "[ SPARCLE  ] base seed offset " << s
              << " (override with SPARCLE_TEST_SEED=<n>)" << std::endl;
    return s;
  }();
  return seed;
}

/// Reads a non-negative integer env knob (e.g. SPARCLE_FUZZ_ITERS),
/// falling back when unset or empty.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (!env || !*env) return fallback;
  return static_cast<std::size_t>(std::strtoull(env, nullptr, 0));
}

/// The reproduction footer for a failed randomized assertion: append to
/// EXPECT/ASSERT streams so every failure prints the effective seed and
/// the exact variable to replay it —
///
///     EXPECT_TRUE(ok) << testutil::seed_message(seed);
inline std::string seed_message(std::uint64_t seed) {
  return " [seed=" + std::to_string(seed) +
         "; rerun with SPARCLE_TEST_SEED=" + std::to_string(seed) + "]";
}

}  // namespace sparcle::testutil
