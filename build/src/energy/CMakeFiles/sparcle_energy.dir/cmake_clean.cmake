file(REMOVE_RECURSE
  "CMakeFiles/sparcle_energy.dir/energy_model.cpp.o"
  "CMakeFiles/sparcle_energy.dir/energy_model.cpp.o.d"
  "libsparcle_energy.a"
  "libsparcle_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
