file(REMOVE_RECURSE
  "libsparcle_energy.a"
)
