# Empty compiler generated dependencies file for sparcle_energy.
# This may be replaced when dependencies are built.
