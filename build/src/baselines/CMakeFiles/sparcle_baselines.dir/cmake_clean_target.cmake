file(REMOVE_RECURSE
  "libsparcle_baselines.a"
)
