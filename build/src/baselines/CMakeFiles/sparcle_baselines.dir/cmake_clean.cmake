file(REMOVE_RECURSE
  "CMakeFiles/sparcle_baselines.dir/cloud.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/cloud.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/exhaustive.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/exhaustive.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/greedy_baselines.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/greedy_baselines.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/heft.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/heft.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/registry.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/registry.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/rstorm.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/rstorm.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/tstorm.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/tstorm.cpp.o.d"
  "CMakeFiles/sparcle_baselines.dir/vne.cpp.o"
  "CMakeFiles/sparcle_baselines.dir/vne.cpp.o.d"
  "libsparcle_baselines.a"
  "libsparcle_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
