# Empty compiler generated dependencies file for sparcle_baselines.
# This may be replaced when dependencies are built.
