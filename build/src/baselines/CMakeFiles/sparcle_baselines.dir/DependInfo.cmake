
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cloud.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/cloud.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/cloud.cpp.o.d"
  "/root/repo/src/baselines/exhaustive.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/exhaustive.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/exhaustive.cpp.o.d"
  "/root/repo/src/baselines/greedy_baselines.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/greedy_baselines.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/greedy_baselines.cpp.o.d"
  "/root/repo/src/baselines/heft.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/heft.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/heft.cpp.o.d"
  "/root/repo/src/baselines/registry.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/registry.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/registry.cpp.o.d"
  "/root/repo/src/baselines/rstorm.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/rstorm.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/rstorm.cpp.o.d"
  "/root/repo/src/baselines/tstorm.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/tstorm.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/tstorm.cpp.o.d"
  "/root/repo/src/baselines/vne.cpp" "src/baselines/CMakeFiles/sparcle_baselines.dir/vne.cpp.o" "gcc" "src/baselines/CMakeFiles/sparcle_baselines.dir/vne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sparcle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sparcle_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
