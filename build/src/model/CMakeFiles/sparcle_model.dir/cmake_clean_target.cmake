file(REMOVE_RECURSE
  "libsparcle_model.a"
)
