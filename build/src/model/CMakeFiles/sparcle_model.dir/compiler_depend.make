# Empty compiler generated dependencies file for sparcle_model.
# This may be replaced when dependencies are built.
