file(REMOVE_RECURSE
  "CMakeFiles/sparcle_model.dir/capacity.cpp.o"
  "CMakeFiles/sparcle_model.dir/capacity.cpp.o.d"
  "CMakeFiles/sparcle_model.dir/dot_export.cpp.o"
  "CMakeFiles/sparcle_model.dir/dot_export.cpp.o.d"
  "CMakeFiles/sparcle_model.dir/network.cpp.o"
  "CMakeFiles/sparcle_model.dir/network.cpp.o.d"
  "CMakeFiles/sparcle_model.dir/placement.cpp.o"
  "CMakeFiles/sparcle_model.dir/placement.cpp.o.d"
  "CMakeFiles/sparcle_model.dir/task_graph.cpp.o"
  "CMakeFiles/sparcle_model.dir/task_graph.cpp.o.d"
  "libsparcle_model.a"
  "libsparcle_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
