
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/capacity.cpp" "src/model/CMakeFiles/sparcle_model.dir/capacity.cpp.o" "gcc" "src/model/CMakeFiles/sparcle_model.dir/capacity.cpp.o.d"
  "/root/repo/src/model/dot_export.cpp" "src/model/CMakeFiles/sparcle_model.dir/dot_export.cpp.o" "gcc" "src/model/CMakeFiles/sparcle_model.dir/dot_export.cpp.o.d"
  "/root/repo/src/model/network.cpp" "src/model/CMakeFiles/sparcle_model.dir/network.cpp.o" "gcc" "src/model/CMakeFiles/sparcle_model.dir/network.cpp.o.d"
  "/root/repo/src/model/placement.cpp" "src/model/CMakeFiles/sparcle_model.dir/placement.cpp.o" "gcc" "src/model/CMakeFiles/sparcle_model.dir/placement.cpp.o.d"
  "/root/repo/src/model/task_graph.cpp" "src/model/CMakeFiles/sparcle_model.dir/task_graph.cpp.o" "gcc" "src/model/CMakeFiles/sparcle_model.dir/task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
