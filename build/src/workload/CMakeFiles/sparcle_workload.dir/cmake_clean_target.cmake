file(REMOVE_RECURSE
  "libsparcle_workload.a"
)
