file(REMOVE_RECURSE
  "CMakeFiles/sparcle_workload.dir/churn.cpp.o"
  "CMakeFiles/sparcle_workload.dir/churn.cpp.o.d"
  "CMakeFiles/sparcle_workload.dir/scenario_io.cpp.o"
  "CMakeFiles/sparcle_workload.dir/scenario_io.cpp.o.d"
  "CMakeFiles/sparcle_workload.dir/scenarios.cpp.o"
  "CMakeFiles/sparcle_workload.dir/scenarios.cpp.o.d"
  "CMakeFiles/sparcle_workload.dir/stats.cpp.o"
  "CMakeFiles/sparcle_workload.dir/stats.cpp.o.d"
  "CMakeFiles/sparcle_workload.dir/task_graphs.cpp.o"
  "CMakeFiles/sparcle_workload.dir/task_graphs.cpp.o.d"
  "CMakeFiles/sparcle_workload.dir/topologies.cpp.o"
  "CMakeFiles/sparcle_workload.dir/topologies.cpp.o.d"
  "libsparcle_workload.a"
  "libsparcle_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
