
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/churn.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/churn.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/churn.cpp.o.d"
  "/root/repo/src/workload/scenario_io.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/scenario_io.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/scenario_io.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/scenarios.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/scenarios.cpp.o.d"
  "/root/repo/src/workload/stats.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/stats.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/stats.cpp.o.d"
  "/root/repo/src/workload/task_graphs.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/task_graphs.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/task_graphs.cpp.o.d"
  "/root/repo/src/workload/topologies.cpp" "src/workload/CMakeFiles/sparcle_workload.dir/topologies.cpp.o" "gcc" "src/workload/CMakeFiles/sparcle_workload.dir/topologies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sparcle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sparcle_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
