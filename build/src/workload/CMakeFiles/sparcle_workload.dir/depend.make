# Empty dependencies file for sparcle_workload.
# This may be replaced when dependencies are built.
