
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/sparcle_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/availability.cpp" "src/core/CMakeFiles/sparcle_core.dir/availability.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/availability.cpp.o.d"
  "/root/repo/src/core/capacity_planner.cpp" "src/core/CMakeFiles/sparcle_core.dir/capacity_planner.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/capacity_planner.cpp.o.d"
  "/root/repo/src/core/fairness.cpp" "src/core/CMakeFiles/sparcle_core.dir/fairness.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/fairness.cpp.o.d"
  "/root/repo/src/core/greedy_engine.cpp" "src/core/CMakeFiles/sparcle_core.dir/greedy_engine.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/greedy_engine.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/core/CMakeFiles/sparcle_core.dir/latency.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/latency.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/sparcle_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/prediction.cpp" "src/core/CMakeFiles/sparcle_core.dir/prediction.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/prediction.cpp.o.d"
  "/root/repo/src/core/provisioning.cpp" "src/core/CMakeFiles/sparcle_core.dir/provisioning.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/provisioning.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/sparcle_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/smallmat.cpp" "src/core/CMakeFiles/sparcle_core.dir/smallmat.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/smallmat.cpp.o.d"
  "/root/repo/src/core/sparcle_assigner.cpp" "src/core/CMakeFiles/sparcle_core.dir/sparcle_assigner.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/sparcle_assigner.cpp.o.d"
  "/root/repo/src/core/widest_path.cpp" "src/core/CMakeFiles/sparcle_core.dir/widest_path.cpp.o" "gcc" "src/core/CMakeFiles/sparcle_core.dir/widest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/sparcle_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
