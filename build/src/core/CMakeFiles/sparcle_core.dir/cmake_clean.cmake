file(REMOVE_RECURSE
  "CMakeFiles/sparcle_core.dir/assignment.cpp.o"
  "CMakeFiles/sparcle_core.dir/assignment.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/availability.cpp.o"
  "CMakeFiles/sparcle_core.dir/availability.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/capacity_planner.cpp.o"
  "CMakeFiles/sparcle_core.dir/capacity_planner.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/fairness.cpp.o"
  "CMakeFiles/sparcle_core.dir/fairness.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/greedy_engine.cpp.o"
  "CMakeFiles/sparcle_core.dir/greedy_engine.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/latency.cpp.o"
  "CMakeFiles/sparcle_core.dir/latency.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/local_search.cpp.o"
  "CMakeFiles/sparcle_core.dir/local_search.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/prediction.cpp.o"
  "CMakeFiles/sparcle_core.dir/prediction.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/provisioning.cpp.o"
  "CMakeFiles/sparcle_core.dir/provisioning.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/scheduler.cpp.o"
  "CMakeFiles/sparcle_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/smallmat.cpp.o"
  "CMakeFiles/sparcle_core.dir/smallmat.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/sparcle_assigner.cpp.o"
  "CMakeFiles/sparcle_core.dir/sparcle_assigner.cpp.o.d"
  "CMakeFiles/sparcle_core.dir/widest_path.cpp.o"
  "CMakeFiles/sparcle_core.dir/widest_path.cpp.o.d"
  "libsparcle_core.a"
  "libsparcle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
