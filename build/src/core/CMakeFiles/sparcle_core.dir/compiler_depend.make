# Empty compiler generated dependencies file for sparcle_core.
# This may be replaced when dependencies are built.
