file(REMOVE_RECURSE
  "libsparcle_core.a"
)
