file(REMOVE_RECURSE
  "libsparcle_sim.a"
)
