# Empty dependencies file for sparcle_sim.
# This may be replaced when dependencies are built.
