file(REMOVE_RECURSE
  "CMakeFiles/sparcle_sim.dir/stream_simulator.cpp.o"
  "CMakeFiles/sparcle_sim.dir/stream_simulator.cpp.o.d"
  "CMakeFiles/sparcle_sim.dir/trace.cpp.o"
  "CMakeFiles/sparcle_sim.dir/trace.cpp.o.d"
  "libsparcle_sim.a"
  "libsparcle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
