file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_scaling.dir/bench_micro_scaling.cpp.o"
  "CMakeFiles/bench_micro_scaling.dir/bench_micro_scaling.cpp.o.d"
  "bench_micro_scaling"
  "bench_micro_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
