file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multiresource.dir/bench_fig12_multiresource.cpp.o"
  "CMakeFiles/bench_fig12_multiresource.dir/bench_fig12_multiresource.cpp.o.d"
  "bench_fig12_multiresource"
  "bench_fig12_multiresource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multiresource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
