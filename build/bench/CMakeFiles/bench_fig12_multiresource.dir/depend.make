# Empty dependencies file for bench_fig12_multiresource.
# This may be replaced when dependencies are built.
