# Empty dependencies file for bench_fig10_availability.
# This may be replaced when dependencies are built.
