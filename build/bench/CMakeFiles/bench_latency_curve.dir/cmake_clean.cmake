file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_curve.dir/bench_latency_curve.cpp.o"
  "CMakeFiles/bench_latency_curve.dir/bench_latency_curve.cpp.o.d"
  "bench_latency_curve"
  "bench_latency_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
