# Empty compiler generated dependencies file for bench_latency_curve.
# This may be replaced when dependencies are built.
