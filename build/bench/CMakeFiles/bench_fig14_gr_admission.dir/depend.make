# Empty dependencies file for bench_fig14_gr_admission.
# This may be replaced when dependencies are built.
