file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gr_admission.dir/bench_fig14_gr_admission.cpp.o"
  "CMakeFiles/bench_fig14_gr_admission.dir/bench_fig14_gr_admission.cpp.o.d"
  "bench_fig14_gr_admission"
  "bench_fig14_gr_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gr_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
