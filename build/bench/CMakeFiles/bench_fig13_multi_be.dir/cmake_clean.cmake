file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_multi_be.dir/bench_fig13_multi_be.cpp.o"
  "CMakeFiles/bench_fig13_multi_be.dir/bench_fig13_multi_be.cpp.o.d"
  "bench_fig13_multi_be"
  "bench_fig13_multi_be.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_multi_be.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
