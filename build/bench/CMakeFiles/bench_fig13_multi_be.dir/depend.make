# Empty dependencies file for bench_fig13_multi_be.
# This may be replaced when dependencies are built.
