# Empty compiler generated dependencies file for bench_reoptimize.
# This may be replaced when dependencies are built.
