file(REMOVE_RECURSE
  "CMakeFiles/bench_reoptimize.dir/bench_reoptimize.cpp.o"
  "CMakeFiles/bench_reoptimize.dir/bench_reoptimize.cpp.o.d"
  "bench_reoptimize"
  "bench_reoptimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reoptimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
