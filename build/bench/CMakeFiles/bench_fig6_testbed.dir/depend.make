# Empty dependencies file for bench_fig6_testbed.
# This may be replaced when dependencies are built.
