file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_testbed.dir/bench_fig6_testbed.cpp.o"
  "CMakeFiles/bench_fig6_testbed.dir/bench_fig6_testbed.cpp.o.d"
  "bench_fig6_testbed"
  "bench_fig6_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
