# Empty dependencies file for test_reoptimize.
# This may be replaced when dependencies are built.
