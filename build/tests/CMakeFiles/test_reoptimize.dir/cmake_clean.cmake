file(REMOVE_RECURSE
  "CMakeFiles/test_reoptimize.dir/test_reoptimize.cpp.o"
  "CMakeFiles/test_reoptimize.dir/test_reoptimize.cpp.o.d"
  "test_reoptimize"
  "test_reoptimize.pdb"
  "test_reoptimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reoptimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
