file(REMOVE_RECURSE
  "CMakeFiles/test_sparcle_assigner.dir/test_sparcle_assigner.cpp.o"
  "CMakeFiles/test_sparcle_assigner.dir/test_sparcle_assigner.cpp.o.d"
  "test_sparcle_assigner"
  "test_sparcle_assigner.pdb"
  "test_sparcle_assigner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparcle_assigner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
