# Empty compiler generated dependencies file for test_sparcle_assigner.
# This may be replaced when dependencies are built.
