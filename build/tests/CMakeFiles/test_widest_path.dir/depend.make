# Empty dependencies file for test_widest_path.
# This may be replaced when dependencies are built.
