file(REMOVE_RECURSE
  "CMakeFiles/test_widest_path.dir/test_widest_path.cpp.o"
  "CMakeFiles/test_widest_path.dir/test_widest_path.cpp.o.d"
  "test_widest_path"
  "test_widest_path.pdb"
  "test_widest_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_widest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
