file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_fuzz.dir/test_scenario_fuzz.cpp.o"
  "CMakeFiles/test_scenario_fuzz.dir/test_scenario_fuzz.cpp.o.d"
  "test_scenario_fuzz"
  "test_scenario_fuzz.pdb"
  "test_scenario_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
