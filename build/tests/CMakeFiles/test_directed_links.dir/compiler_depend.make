# Empty compiler generated dependencies file for test_directed_links.
# This may be replaced when dependencies are built.
