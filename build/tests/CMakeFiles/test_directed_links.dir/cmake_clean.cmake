file(REMOVE_RECURSE
  "CMakeFiles/test_directed_links.dir/test_directed_links.cpp.o"
  "CMakeFiles/test_directed_links.dir/test_directed_links.cpp.o.d"
  "test_directed_links"
  "test_directed_links.pdb"
  "test_directed_links[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directed_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
