file(REMOVE_RECURSE
  "CMakeFiles/test_testbed_sweep.dir/test_testbed_sweep.cpp.o"
  "CMakeFiles/test_testbed_sweep.dir/test_testbed_sweep.cpp.o.d"
  "test_testbed_sweep"
  "test_testbed_sweep.pdb"
  "test_testbed_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testbed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
