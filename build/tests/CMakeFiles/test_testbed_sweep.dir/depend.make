# Empty dependencies file for test_testbed_sweep.
# This may be replaced when dependencies are built.
