# Empty dependencies file for test_greedy_engine.
# This may be replaced when dependencies are built.
