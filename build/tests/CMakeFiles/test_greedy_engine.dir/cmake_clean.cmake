file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_engine.dir/test_greedy_engine.cpp.o"
  "CMakeFiles/test_greedy_engine.dir/test_greedy_engine.cpp.o.d"
  "test_greedy_engine"
  "test_greedy_engine.pdb"
  "test_greedy_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
