
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_task_graph.cpp" "tests/CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o" "gcc" "tests/CMakeFiles/test_task_graph.dir/test_task_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sparcle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sparcle_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sparcle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sparcle_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sparcle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sparcle_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
