file(REMOVE_RECURSE
  "CMakeFiles/test_fairness_random.dir/test_fairness_random.cpp.o"
  "CMakeFiles/test_fairness_random.dir/test_fairness_random.cpp.o.d"
  "test_fairness_random"
  "test_fairness_random.pdb"
  "test_fairness_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fairness_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
