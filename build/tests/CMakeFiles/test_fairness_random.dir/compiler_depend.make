# Empty compiler generated dependencies file for test_fairness_random.
# This may be replaced when dependencies are built.
