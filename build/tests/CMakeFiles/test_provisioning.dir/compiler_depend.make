# Empty compiler generated dependencies file for test_provisioning.
# This may be replaced when dependencies are built.
