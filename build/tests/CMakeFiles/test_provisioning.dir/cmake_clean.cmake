file(REMOVE_RECURSE
  "CMakeFiles/test_provisioning.dir/test_provisioning.cpp.o"
  "CMakeFiles/test_provisioning.dir/test_provisioning.cpp.o.d"
  "test_provisioning"
  "test_provisioning.pdb"
  "test_provisioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
