file(REMOVE_RECURSE
  "CMakeFiles/test_smallmat.dir/test_smallmat.cpp.o"
  "CMakeFiles/test_smallmat.dir/test_smallmat.cpp.o.d"
  "test_smallmat"
  "test_smallmat.pdb"
  "test_smallmat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smallmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
