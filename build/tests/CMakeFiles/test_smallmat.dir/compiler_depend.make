# Empty compiler generated dependencies file for test_smallmat.
# This may be replaced when dependencies are built.
