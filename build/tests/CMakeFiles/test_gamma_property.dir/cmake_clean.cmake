file(REMOVE_RECURSE
  "CMakeFiles/test_gamma_property.dir/test_gamma_property.cpp.o"
  "CMakeFiles/test_gamma_property.dir/test_gamma_property.cpp.o.d"
  "test_gamma_property"
  "test_gamma_property.pdb"
  "test_gamma_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gamma_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
