# Empty dependencies file for test_gamma_property.
# This may be replaced when dependencies are built.
