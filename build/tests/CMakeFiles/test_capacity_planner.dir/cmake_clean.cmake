file(REMOVE_RECURSE
  "CMakeFiles/test_capacity_planner.dir/test_capacity_planner.cpp.o"
  "CMakeFiles/test_capacity_planner.dir/test_capacity_planner.cpp.o.d"
  "test_capacity_planner"
  "test_capacity_planner.pdb"
  "test_capacity_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
