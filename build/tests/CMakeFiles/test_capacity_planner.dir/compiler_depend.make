# Empty compiler generated dependencies file for test_capacity_planner.
# This may be replaced when dependencies are built.
