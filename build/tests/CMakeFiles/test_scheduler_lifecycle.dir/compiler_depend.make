# Empty compiler generated dependencies file for test_scheduler_lifecycle.
# This may be replaced when dependencies are built.
