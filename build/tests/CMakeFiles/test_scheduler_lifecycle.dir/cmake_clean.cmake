file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_lifecycle.dir/test_scheduler_lifecycle.cpp.o"
  "CMakeFiles/test_scheduler_lifecycle.dir/test_scheduler_lifecycle.cpp.o.d"
  "test_scheduler_lifecycle"
  "test_scheduler_lifecycle.pdb"
  "test_scheduler_lifecycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
