# Empty compiler generated dependencies file for failure_resilience.
# This may be replaced when dependencies are built.
