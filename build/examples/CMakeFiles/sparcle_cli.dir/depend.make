# Empty dependencies file for sparcle_cli.
# This may be replaced when dependencies are built.
