file(REMOVE_RECURSE
  "CMakeFiles/sparcle_cli.dir/sparcle_cli.cpp.o"
  "CMakeFiles/sparcle_cli.dir/sparcle_cli.cpp.o.d"
  "sparcle_cli"
  "sparcle_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparcle_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
