# Empty dependencies file for face_detection_pipeline.
# This may be replaced when dependencies are built.
