file(REMOVE_RECURSE
  "CMakeFiles/face_detection_pipeline.dir/face_detection_pipeline.cpp.o"
  "CMakeFiles/face_detection_pipeline.dir/face_detection_pipeline.cpp.o.d"
  "face_detection_pipeline"
  "face_detection_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_detection_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
