# Empty compiler generated dependencies file for multi_tenant_scheduling.
# This may be replaced when dependencies are built.
