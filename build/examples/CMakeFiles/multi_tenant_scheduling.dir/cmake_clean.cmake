file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_scheduling.dir/multi_tenant_scheduling.cpp.o"
  "CMakeFiles/multi_tenant_scheduling.dir/multi_tenant_scheduling.cpp.o.d"
  "multi_tenant_scheduling"
  "multi_tenant_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
