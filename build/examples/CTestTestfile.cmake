# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_face_detection "/root/repo/build/examples/face_detection_pipeline" "0.5")
set_tests_properties(example_face_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_tenant "/root/repo/build/examples/multi_tenant_scheduling")
set_tests_properties(example_multi_tenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_resilience "/root/repo/build/examples/failure_resilience")
set_tests_properties(example_failure_resilience PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli "/root/repo/build/examples/sparcle_cli" "/root/repo/examples/scenarios/edge_campus.scn" "--simulate" "100")
set_tests_properties(example_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_baseline "/root/repo/build/examples/sparcle_cli" "/root/repo/examples/scenarios/edge_campus.scn" "--assigner" "GS")
set_tests_properties(example_cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
